package vfs

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
)

// Mem is an in-memory FS with crash simulation.
//
// Durability model: file *data* becomes durable only when the file is
// Synced; directory operations (Create of an empty file, Rename, Remove) are
// durable immediately, as on a journalled file system with ordered metadata.
// This is the model the paper's checkpoint-switch protocol is written
// against — it fsyncs file contents before the version-file rename and
// treats the rename itself as the atomic step.
//
// Crash() discards all unsynced data, simulating a transient failure.
// CrashTorn(pageSize) persists, for each file with unsynced data, a random
// page-aligned prefix of that data before discarding the rest, and marks the
// final partially-persisted page damaged — matching the paper's hardware,
// where "a partially written page will report an error when it is read".
//
// Damage(name, off, n) marks a byte range of a file's durable content
// unreadable, simulating a hard media failure.
type Mem struct {
	mu    sync.Mutex
	files map[string]*memFile
	rng   *rand.Rand

	// FailSync, when non-nil, is consulted before each Sync; returning an
	// error makes the Sync fail without persisting. Used for fault
	// injection in tests.
	FailSync func(name string) error
}

// dirtyPageSize is the granularity at which unsynced in-place overwrites
// are tracked, so CrashTorn can persist a random subset of dirty pages —
// the torn multi-page update of the paper's §2.
const dirtyPageSize = 512

type memFile struct {
	synced       []byte         // durable content
	current      []byte         // content as the running program sees it
	damaged      map[int64]bool // damaged byte offsets (durable content)
	dirty        map[int64]bool // page indices overwritten since last sync
	minDirty     int64          // lowest offset written since last sync; -1 = none
	failedFrom   int64          // start of a failed sync's damaged tail; -1 = none
	syncedExists bool           // whether the file survives a crash at all
	cow          bool           // byte slices are shared with a clone parent
}

// materialize gives a copy-on-write file private byte slices before the
// first mutation, so a CloneSynced image and its parent never scribble on
// each other's backing arrays.
func (f *memFile) materialize() {
	if !f.cow {
		return
	}
	f.current = append(f.current[:0:0], f.current...)
	f.synced = append(f.synced[:0:0], f.synced...)
	f.cow = false
}

// NewMem returns an empty in-memory file system. seed fixes the randomness
// used by CrashTorn, keeping reliability experiments reproducible.
func NewMem(seed int64) *Mem {
	return &Mem{files: make(map[string]*memFile), rng: rand.New(rand.NewSource(seed))}
}

func (m *Mem) get(name string) (*memFile, error) {
	if err := ValidName(name); err != nil {
		return nil, err
	}
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f, nil
}

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := ValidName(name); err != nil {
		return nil, err
	}
	f := &memFile{damaged: make(map[int64]bool), minDirty: -1, failedFrom: -1, syncedExists: true}
	m.files[name] = f
	return &memHandle{fs: m, f: f, name: name, writable: true}, nil
}

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := m.get(name)
	if err != nil {
		return nil, err
	}
	return &memHandle{fs: m, f: f, name: name}, nil
}

// Append implements FS.
func (m *Mem) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := ValidName(name); err != nil {
		return nil, err
	}
	f, ok := m.files[name]
	if !ok {
		f = &memFile{damaged: make(map[int64]bool), minDirty: -1, failedFrom: -1, syncedExists: true}
		m.files[name] = f
	}
	return &memHandle{fs: m, f: f, name: name, writable: true, pos: int64(len(f.current))}, nil
}

// OpenRW implements FS.
func (m *Mem) OpenRW(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := m.get(name)
	if err != nil {
		return nil, err
	}
	return &memHandle{fs: m, f: f, name: name, writable: true}, nil
}

// Rename implements FS. It is atomic and immediately durable.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := m.get(oldname)
	if err != nil {
		return err
	}
	if err := ValidName(newname); err != nil {
		return err
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS; immediately durable.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.get(name); err != nil {
		return err
	}
	delete(m.files, name)
	return nil
}

// List implements FS.
func (m *Mem) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (m *Mem) Stat(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := m.get(name)
	if err != nil {
		return 0, err
	}
	return int64(len(f.current)), nil
}

// Crash simulates a transient failure: every file reverts to its last
// synced content, and files never synced since creation revert to the state
// their metadata implies (they exist, empty-at-last-sync).
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if !f.syncedExists {
			delete(m.files, name)
			continue
		}
		f.current = append(f.current[:0:0], f.synced...)
		f.dirty = nil
		f.minDirty = -1
		f.failedFrom = -1
	}
}

// CloneSynced returns a new, independent Mem holding this file system's
// durable view: exactly what a restart would find after a crash at this
// instant — synced content only, unsynced data and never-synced files gone,
// damage marks preserved. The clone is cheap: byte slices are shared
// copy-on-write with the parent (O(files), not O(bytes)), so a crash-point
// torture run can snapshot the disk at every operation without copying the
// whole file system each time. Open handles are not cloned.
func (m *Mem) CloneSynced() *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	clone := &Mem{files: make(map[string]*memFile, len(m.files)), rng: rand.New(rand.NewSource(1))}
	for name, f := range m.files {
		if !f.syncedExists {
			continue
		}
		nf := &memFile{
			synced:       f.synced,
			current:      f.synced, // the durable view IS the content after a crash
			damaged:      make(map[int64]bool, len(f.damaged)),
			minDirty:     -1,
			failedFrom:   -1,
			syncedExists: true,
			cow:          true,
		}
		for off := range f.damaged {
			if off < int64(len(f.synced)) {
				nf.damaged[off] = true
			}
		}
		// The parent now shares its synced slice with the clone; its next
		// mutation must copy first too.
		f.cow = true
		clone.files[name] = nf
	}
	return clone
}

// CrashTorn is Crash, except that for each file with unsynced data a random
// pageSize-aligned prefix of the pending bytes becomes durable first, and if
// the prefix ends mid-page the final partial page is marked damaged so that
// reading it fails — the paper's torn-page model.
func (m *Mem) CrashTorn(pageSize int) {
	if pageSize <= 0 {
		pageSize = 512
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if !f.syncedExists {
			delete(m.files, name)
			continue
		}
		f.materialize()
		// In-place overwrites within the synced extent: each dirty page
		// independently persists or reverts, so a multi-page in-place
		// update can land half-written — §2's torn-update hazard.
		pages := make([]int64, 0, len(f.dirty))
		for pg := range f.dirty {
			pages = append(pages, pg)
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		for _, pg := range pages {
			start := pg * dirtyPageSize
			end := start + dirtyPageSize
			if end > int64(len(f.synced)) {
				end = int64(len(f.synced))
			}
			if end > int64(len(f.current)) {
				end = int64(len(f.current))
			}
			if start >= end {
				continue // beyond the synced extent: append logic below
			}
			if m.rng.Intn(2) == 0 {
				copy(f.synced[start:end], f.current[start:end])
			}
		}
		if len(f.current) > len(f.synced) {
			pending := len(f.current) - len(f.synced)
			keep := m.rng.Intn(pending + 1)
			durable := append(f.synced, f.current[len(f.synced):len(f.synced)+keep]...)
			if keep%pageSize != 0 && m.rng.Intn(2) == 0 {
				// The last, partially written page reads back
				// as an error.
				pageStart := int64(len(durable) - keep%pageSize)
				for off := pageStart; off < int64(len(durable)); off++ {
					f.damaged[off] = true
				}
			}
			f.synced = durable
		}
		f.current = append(f.synced[:0:0], f.synced...)
		f.dirty = nil
		f.minDirty = -1
	}
}

// Damage marks n bytes at off of the named file's content unreadable,
// simulating a hard media failure.
func (m *Mem) Damage(name string, off, n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := m.get(name)
	if err != nil {
		return err
	}
	for i := off; i < off+n; i++ {
		f.damaged[i] = true
	}
	return nil
}

// TotalBytes reports the summed sizes of all files: the design's disk-space
// cost, measured in experiment E7.
func (m *Mem) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, f := range m.files {
		total += int64(len(f.current))
	}
	return total
}

// memHandle is an open handle onto a memFile.
type memHandle struct {
	fs       *Mem
	f        *memFile
	name     string
	pos      int64
	writable bool
	closed   bool
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return int64(len(h.f.current)), nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n, err := h.readAtLocked(p, h.pos)
	h.pos += int64(n)
	return n, err
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.readAtLocked(p, off)
}

func (h *memHandle) readAtLocked(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("vfs: read on closed file %s", h.name)
	}
	if off >= int64(len(h.f.current)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.current[off:])
	for i := off; i < off+int64(n); i++ {
		if h.f.damaged[i] {
			return 0, fmt.Errorf("%w: %s at offset %d", ErrDamaged, h.name, i)
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n, err := h.writeAtLocked(p, h.pos)
	h.pos += int64(n)
	return n, err
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.writeAtLocked(p, off)
}

func (h *memHandle) writeAtLocked(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("vfs: write on closed file %s", h.name)
	}
	if !h.writable {
		return 0, fmt.Errorf("vfs: write on read-only file %s", h.name)
	}
	h.f.materialize()
	if grow := off + int64(len(p)) - int64(len(h.f.current)); grow > 0 {
		h.f.current = append(h.f.current, make([]byte, grow)...)
	}
	copy(h.f.current[off:], p)
	if len(p) > 0 {
		if h.f.dirty == nil {
			h.f.dirty = make(map[int64]bool)
		}
		for pg := off / dirtyPageSize; pg <= (off+int64(len(p))-1)/dirtyPageSize; pg++ {
			h.f.dirty[pg] = true
		}
		if h.f.minDirty < 0 || off < h.f.minDirty {
			h.f.minDirty = off
		}
	}
	// Overwriting repairs damage at those offsets once synced; track by
	// clearing damage on write (the new data is what subsequent reads
	// should see).
	for i := off; i < off+int64(len(p)); i++ {
		delete(h.f.damaged, i)
	}
	return len(p), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.pos
	case io.SeekEnd:
		base = int64(len(h.f.current))
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("vfs: negative seek")
	}
	h.pos = base + offset
	return h.pos, nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.writable {
		return fmt.Errorf("vfs: truncate on read-only file %s", h.name)
	}
	h.f.materialize()
	cur := int64(len(h.f.current))
	switch {
	case size < cur:
		h.f.current = h.f.current[:size]
	case size > cur:
		h.f.current = append(h.f.current, make([]byte, size-cur)...)
	}
	return nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.FailSync != nil {
		if err := h.fs.FailSync(h.name); err != nil {
			// A failed sync is an interrupted flush: the unsynced
			// tail being transferred is now indeterminate on disk,
			// and §2's torn-update model says a partially written
			// page reads back as an error. Make the tail durable but
			// damaged (the marks survive Crash) rather than
			// pretending the flush never started. Overwriting the
			// region, or a later successful Sync of it, repairs it.
			h.f.materialize()
			if start := int64(len(h.f.synced)); int64(len(h.f.current)) > start {
				for off := start; off < int64(len(h.f.current)); off++ {
					h.f.damaged[off] = true
				}
				h.f.synced = append(h.f.synced, h.f.current[start:]...)
				if h.f.failedFrom < 0 || start < h.f.failedFrom {
					h.f.failedFrom = start
				}
			}
			h.f.syncedExists = true
			// dirty/minDirty stay set: the data is still unflushed,
			// and a retried Sync must know the region to repair.
			return err
		}
	}
	h.f.materialize()
	// A successful flush repairs earlier failed-sync damage: the whole
	// region is rewritten from intact in-memory data.
	if h.f.failedFrom >= 0 {
		for off := h.f.failedFrom; off < int64(len(h.f.current)); off++ {
			delete(h.f.damaged, off)
		}
		h.f.failedFrom = -1
	}
	// Fast path for append-only files (logs): when nothing within the
	// already-synced extent was overwritten, only the new tail needs
	// copying. This keeps a growing log's sync cost linear overall.
	if h.f.minDirty >= int64(len(h.f.synced)) && len(h.f.current) >= len(h.f.synced) {
		h.f.synced = append(h.f.synced, h.f.current[len(h.f.synced):]...)
	} else {
		h.f.synced = append(h.f.synced[:0:0], h.f.current...)
	}
	h.f.syncedExists = true
	h.f.dirty = nil
	h.f.minDirty = -1
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
