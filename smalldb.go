// Package smalldb is a small-database engine in the style of Birrell,
// Jones and Wobber, "A Simple and Efficient Implementation for Small
// Databases" (SOSP 1987): the entire database lives as an ordinary strongly
// typed Go data structure in memory; every update is a single-shot
// transaction committed by one disk write to a redo log; checkpoints of the
// whole structure bound restart time; recovery reloads the latest
// checkpoint and replays the log.
//
// It suits the databases the paper describes: up to tens of megabytes,
// moderate update rates (bursts of tens per second), no multi-step
// client-visible transactions — user accounts, name services, network
// configuration, file directories, and the other small organizational
// databases of operating and distributed systems.
//
// # Usage
//
// Define a root type holding the whole database, and one struct per update
// operation implementing Update (Verify checks preconditions; Apply
// mutates). Register both, then Open a store:
//
//	type Accounts struct{ ByName map[string]*Account }
//
//	type AddAccount struct{ Name string; UID int }
//	func (u *AddAccount) Verify(root any) error { ... }
//	func (u *AddAccount) Apply(root any) error  { ... }
//
//	func init() {
//	    smalldb.Register(&Accounts{})
//	    smalldb.RegisterUpdate(&AddAccount{})
//	}
//
//	fs, _ := smalldb.NewDirFS("/var/lib/accounts")
//	st, _ := smalldb.Open(smalldb.Config{
//	    FS:      fs,
//	    NewRoot: func() any { return &Accounts{ByName: map[string]*Account{}} },
//	    Retain:  1,
//	})
//	defer st.Close()
//
//	st.Apply(&AddAccount{Name: "amy", UID: 1001})   // one disk write
//	st.View(func(root any) error {                  // no disk at all
//	    a := root.(*Accounts).ByName["amy"]; ...
//	    return nil
//	})
//
// Reads (View) touch only memory. Updates (Apply) cost one disk write. A
// checkpoint (Checkpoint, or the MaxLogBytes/MaxLogEntries policies, or
// CheckpointEvery) trades update availability for restart time, exactly the
// knob the paper discusses.
package smalldb

import (
	"smalldb/internal/core"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
)

// Update is a single-shot transaction against the database root. See
// core.Update for the Verify/Apply contract.
type Update = core.Update

// Config configures a Store; see core.Config for the fields.
type Config = core.Config

// Store is an open database.
type Store = core.Store

// Stats is the store's cumulative instrumentation, with per-phase update
// timers matching the paper's §5 breakdown.
type Stats = core.Stats

// ErrClosed is returned by operations on a closed store.
var ErrClosed = core.ErrClosed

// Open recovers (or initializes) a store.
func Open(cfg Config) (*Store, error) { return core.Open(cfg) }

// Register records a concrete type (the database root, or any type stored
// in interface-typed fields) for pickling.
func Register(v any) { pickle.Register(v) }

// RegisterName is Register under an explicit stable name, which survives
// renaming the Go type.
func RegisterName(name string, v any) { pickle.RegisterName(name, v) }

// RegisterUpdate registers an update type for pickling into log entries.
func RegisterUpdate(u Update) { core.RegisterUpdate(u) }

// FS is the flat-directory file system abstraction the store writes its
// checkpoint and log files into.
type FS = vfs.FS

// NewDirFS returns an FS backed by a directory on the real file system,
// creating the directory if needed.
func NewDirFS(dir string) (FS, error) { return vfs.NewOS(dir) }

// NewMemFS returns an in-memory FS with crash simulation, for tests. The
// seed fixes its randomness.
func NewMemFS(seed int64) *vfs.Mem { return vfs.NewMem(seed) }
