// Useraccounts: the paper's first motivating example — "records of user
// accounts" (/etc/passwd, done right).
//
// The database is a richer structure than a flat file: accounts with uids,
// group membership, and a secondary index from uid to name, all kept
// consistent by single-shot transactions. The example exercises
// precondition enforcement (duplicate names, uid collisions, removing a
// user who still owns a group), crash recovery, and the audit value of the
// redo log.
//
// Run with:
//
//	go run ./examples/useraccounts
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"smalldb"
)

// Passwd is the whole database.
type Passwd struct {
	Accounts map[string]*Account
	Groups   map[string]*Group
	ByUID    map[int]string // secondary index: uid -> name
	NextUID  int
}

// Account is one user record.
type Account struct {
	Name   string
	UID    int
	Home   string
	Shell  string
	Groups []string
}

// Group is one group record.
type Group struct {
	Name    string
	Owner   string
	Members []string
}

func newPasswd() any {
	return &Passwd{
		Accounts: map[string]*Account{},
		Groups:   map[string]*Group{},
		ByUID:    map[int]string{},
		NextUID:  1000,
	}
}

// AddUser creates an account, allocating the next uid.
type AddUser struct {
	Name, Home, Shell string
}

// Verify implements smalldb.Update.
func (u *AddUser) Verify(root any) error {
	p := root.(*Passwd)
	if u.Name == "" {
		return errors.New("empty user name")
	}
	if _, ok := p.Accounts[u.Name]; ok {
		return fmt.Errorf("user %s exists", u.Name)
	}
	return nil
}

// Apply implements smalldb.Update. Note that the uid is assigned here, from
// database state, so replay assigns the same uid deterministically.
func (u *AddUser) Apply(root any) error {
	p := root.(*Passwd)
	uid := p.NextUID
	p.NextUID++
	p.Accounts[u.Name] = &Account{Name: u.Name, UID: uid, Home: u.Home, Shell: u.Shell}
	p.ByUID[uid] = u.Name
	return nil
}

// AddGroup creates a group owned by an existing user.
type AddGroup struct {
	Name, Owner string
}

// Verify implements smalldb.Update.
func (u *AddGroup) Verify(root any) error {
	p := root.(*Passwd)
	if _, ok := p.Groups[u.Name]; ok {
		return fmt.Errorf("group %s exists", u.Name)
	}
	if _, ok := p.Accounts[u.Owner]; !ok {
		return fmt.Errorf("owner %s does not exist", u.Owner)
	}
	return nil
}

// Apply implements smalldb.Update.
func (u *AddGroup) Apply(root any) error {
	p := root.(*Passwd)
	p.Groups[u.Name] = &Group{Name: u.Name, Owner: u.Owner}
	return nil
}

// Join adds a user to a group, updating both sides.
type Join struct {
	User, Group string
}

// Verify implements smalldb.Update.
func (u *Join) Verify(root any) error {
	p := root.(*Passwd)
	if _, ok := p.Accounts[u.User]; !ok {
		return fmt.Errorf("no user %s", u.User)
	}
	g, ok := p.Groups[u.Group]
	if !ok {
		return fmt.Errorf("no group %s", u.Group)
	}
	for _, m := range g.Members {
		if m == u.User {
			return fmt.Errorf("%s already in %s", u.User, u.Group)
		}
	}
	return nil
}

// Apply implements smalldb.Update: both sides of the relation change in one
// transaction — the kind of multi-structure update that tears under §2's
// ad-hoc schemes and is trivially atomic here.
func (u *Join) Apply(root any) error {
	p := root.(*Passwd)
	g := p.Groups[u.Group]
	g.Members = append(g.Members, u.User)
	a := p.Accounts[u.User]
	a.Groups = append(a.Groups, u.Group)
	return nil
}

// RemoveUser deletes an account if it owns no groups.
type RemoveUser struct {
	Name string
}

// Verify implements smalldb.Update.
func (u *RemoveUser) Verify(root any) error {
	p := root.(*Passwd)
	if _, ok := p.Accounts[u.Name]; !ok {
		return fmt.Errorf("no user %s", u.Name)
	}
	for _, g := range p.Groups {
		if g.Owner == u.Name {
			return fmt.Errorf("%s still owns group %s", u.Name, g.Name)
		}
	}
	return nil
}

// Apply implements smalldb.Update.
func (u *RemoveUser) Apply(root any) error {
	p := root.(*Passwd)
	a := p.Accounts[u.Name]
	delete(p.ByUID, a.UID)
	delete(p.Accounts, u.Name)
	for _, gname := range a.Groups {
		if g, ok := p.Groups[gname]; ok {
			out := g.Members[:0]
			for _, m := range g.Members {
				if m != u.Name {
					out = append(out, m)
				}
			}
			g.Members = out
		}
	}
	return nil
}

func init() {
	smalldb.Register(&Passwd{})
	smalldb.Register(&Account{})
	smalldb.Register(&Group{})
	smalldb.RegisterUpdate(&AddUser{})
	smalldb.RegisterUpdate(&AddGroup{})
	smalldb.RegisterUpdate(&Join{})
	smalldb.RegisterUpdate(&RemoveUser{})
}

func main() {
	dir := filepath.Join(os.TempDir(), "smalldb-useraccounts")
	defer os.RemoveAll(dir)
	fs, err := smalldb.NewDirFS(dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := smalldb.Config{FS: fs, NewRoot: newPasswd, Retain: 1, MaxLogEntries: 100}
	st, err := smalldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, name := range []string{"amy", "bob", "carol"} {
		must(st.Apply(&AddUser{Name: name, Home: "/home/" + name, Shell: "/bin/sh"}))
	}
	must(st.Apply(&AddGroup{Name: "wheel", Owner: "amy"}))
	must(st.Apply(&Join{User: "amy", Group: "wheel"}))
	must(st.Apply(&Join{User: "bob", Group: "wheel"}))

	// Invariants enforced before anything reaches the disk:
	for _, bad := range []smalldb.Update{
		&AddUser{Name: "amy"},              // duplicate
		&RemoveUser{Name: "amy"},           // still owns wheel
		&Join{User: "bob", Group: "wheel"}, // already a member
	} {
		if err := st.Apply(bad); err != nil {
			fmt.Println("rejected:", err)
		}
	}

	must(st.Apply(&RemoveUser{Name: "carol"}))

	// Simulate a crash (no Close) and recover.
	st2, err := smalldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	st2.View(func(root any) error {
		p := root.(*Passwd)
		names := make([]string, 0, len(p.Accounts))
		for n := range p.Accounts {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("after recovery:")
		for _, n := range names {
			a := p.Accounts[n]
			fmt.Printf("  %-6s uid=%d groups=%v\n", a.Name, a.UID, a.Groups)
		}
		fmt.Printf("  wheel members: %v (owner %s)\n",
			p.Groups["wheel"].Members, p.Groups["wheel"].Owner)
		fmt.Printf("  uid index: 1000->%s, 1001->%s\n", p.ByUID[1000], p.ByUID[1001])
		return nil
	})
	fmt.Printf("replayed %d log entries on restart\n", st2.Stats().RestartEntries)
}
