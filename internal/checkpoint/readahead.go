package checkpoint

import (
	"io"
	"sync"
)

// Checkpoint load is a strict producer/consumer: the disk delivers bytes,
// the pickle decoder burns CPU turning them back into the root. A plain
// buffered reader serializes the two. ReadAhead overlaps them — a
// background goroutine keeps a few large chunks in flight ahead of the
// decoder, so the disk read hides behind decode CPU (and vice versa).

const (
	readAheadChunk = 256 << 10
	readAheadDepth = 4
)

type raChunk struct {
	b   []byte
	err error // terminal; delivered after b is consumed
}

// ReadAhead is an io.ReadCloser streaming from an underlying reader
// through a bounded prefetch queue. Close stops the prefetch goroutine; it
// does not close the underlying reader.
type ReadAhead struct {
	chunks chan raChunk
	free   chan []byte
	done   chan struct{}
	once   sync.Once

	cur raChunk
	off int
}

// NewReadAhead starts prefetching from r and returns the reader facade.
func NewReadAhead(r io.Reader) *ReadAhead {
	ra := &ReadAhead{
		chunks: make(chan raChunk, readAheadDepth),
		free:   make(chan []byte, readAheadDepth),
		done:   make(chan struct{}),
	}
	for i := 0; i < readAheadDepth; i++ {
		ra.free <- make([]byte, readAheadChunk)
	}
	go ra.fill(r)
	return ra
}

func (ra *ReadAhead) fill(r io.Reader) {
	for {
		var buf []byte
		select {
		case buf = <-ra.free:
		case <-ra.done:
			return
		}
		n, err := io.ReadFull(r, buf)
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		select {
		case ra.chunks <- raChunk{b: buf[:n], err: err}:
		case <-ra.done:
			return
		}
		if err != nil {
			return
		}
	}
}

func (ra *ReadAhead) Read(p []byte) (int, error) {
	for ra.off == len(ra.cur.b) {
		if ra.cur.err != nil {
			return 0, ra.cur.err
		}
		if ra.cur.b != nil {
			// Hand the drained chunk back to the prefetcher.
			select {
			case ra.free <- ra.cur.b[:cap(ra.cur.b)]:
			default:
			}
		}
		select {
		case c := <-ra.chunks:
			ra.cur = c
		case <-ra.done:
			return 0, io.EOF
		}
		ra.off = 0
	}
	n := copy(p, ra.cur.b[ra.off:])
	ra.off += n
	return n, nil
}

// Close stops the prefetch goroutine. Reads after Close return io.EOF.
func (ra *ReadAhead) Close() error {
	ra.once.Do(func() { close(ra.done) })
	return nil
}
