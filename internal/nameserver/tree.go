// Package nameserver implements the paper's running example: "a general
// purpose name-to-value mapping, where the names are strings and the values
// are trees whose arcs are labelled by strings", stored as "a tree of hash
// tables... indexed by strings, [delivering] values that are further hash
// tables" (§3), built directly on the core store.
//
// Names are slash-separated paths ("net/hosts/gva"). Every node may carry a
// string value and arbitrarily many labelled children, so the same tree
// naturally holds user-account records, network configuration and file
// directories — the §1 examples. Enquiry operations (Lookup, List,
// Enumerate, SubtreeCopy) are pure virtual-memory reads; update operations
// (SetValue, DeleteSubtree, PutSubtree, Move) are single-shot transactions,
// each a registered update type that pickles into one log entry.
package nameserver

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"smalldb/internal/core"
	"smalldb/internal/pickle"
)

// Tree is the database root: the name server's entire mapping.
//
// Updates are copy-on-write with respect to published snapshots: every
// mutation rebuilds the nodes along its path (sharing all untouched
// subtrees) instead of editing nodes in place, so a view captured by
// SnapshotView is immutable forever and the core store can serve
// enquiries from it without any lock. The epoch counter makes the copying
// lazy: a node born after the last snapshot is private to the writer and
// may be edited in place, so recovery replay — which publishes nothing
// until it finishes — mutates in place exactly as before.
type Tree struct {
	Root *Node

	// epoch counts published snapshots; nodes born in the current epoch
	// are not yet visible to any snapshot. Unexported: never pickled.
	epoch uint64
}

// Node is one name in the tree: an optional value plus string-labelled
// arcs to children — the paper's hash table delivering further hash tables.
//
// Stamp and StampBy are replication metadata: the Lamport time and origin
// of the write that set Value, used by the replica package's last-writer-
// wins conflict resolution (the role timestamps play in the global name
// service the paper's system fed into). They stay zero for unreplicated
// databases.
type Node struct {
	Value    string
	HasValue bool
	Children map[string]*Node
	Stamp    uint64
	StampBy  string

	// born is the tree epoch this node was created in; a node born before
	// the current epoch is reachable from a published snapshot and must be
	// copied, not edited. Unexported: never pickled, zero after decode.
	born uint64
}

// NewTree returns an empty tree.
func NewTree() *Tree {
	return &Tree{Root: &Node{Children: make(map[string]*Node)}}
}

// NewRoot is the core.Config.NewRoot constructor for a name-server store.
func NewRoot() any { return NewTree() }

func init() {
	pickle.Register(&Tree{})
	pickle.Register(&Node{})
	core.RegisterUpdate(&SetValue{})
	core.RegisterUpdate(&DeleteSubtree{})
	core.RegisterUpdate(&PutSubtree{})
	core.RegisterUpdate(&Move{})
}

// ErrNotFound is returned when a path does not name a node.
var ErrNotFound = errors.New("nameserver: name not found")

// ErrNoValue is returned when a node exists but carries no value.
var ErrNoValue = errors.New("nameserver: name has no value")

// SplitPath parses a slash-separated name into its components, rejecting
// empty components. The empty string names the root.
func SplitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("nameserver: empty component in path %q", path)
		}
	}
	return parts, nil
}

// JoinPath is the inverse of SplitPath.
func JoinPath(parts []string) string { return strings.Join(parts, "/") }

// find walks the tree to the node named by parts, or nil.
func (t *Tree) find(parts []string) *Node {
	n := t.Root
	for _, p := range parts {
		if n == nil || n.Children == nil {
			return nil
		}
		n = n.Children[p]
	}
	return n
}

// prep returns a node the writer may mutate in the current epoch: n
// itself when it was born after the last snapshot, otherwise a shallow
// copy (fields duplicated, children map cloned with the child pointers
// shared) stamped with the current epoch. Copying the map is what makes
// the write invisible to snapshots: they keep reaching the old map.
func (t *Tree) prep(n *Node) *Node {
	if n.born == t.epoch {
		return n
	}
	c := &Node{Value: n.Value, HasValue: n.HasValue, Stamp: n.Stamp, StampBy: n.StampBy, born: t.epoch}
	if n.Children != nil {
		c.Children = make(map[string]*Node, len(n.Children))
		for k, v := range n.Children {
			c.Children[k] = v
		}
	}
	return c
}

// ensure walks to parts copy-on-write, creating intermediate nodes, and
// returns the writable node at parts. The rebuilt path is installed as the
// tree's root; everything off the path is shared with the previous state.
func (t *Tree) ensure(parts []string) *Node {
	if t.Root == nil {
		t.Root = &Node{Children: make(map[string]*Node), born: t.epoch}
	} else {
		t.Root = t.prep(t.Root)
	}
	n := t.Root
	for _, p := range parts {
		if n.Children == nil {
			n.Children = make(map[string]*Node)
		}
		child, ok := n.Children[p]
		if ok {
			child = t.prep(child)
		} else {
			child = &Node{born: t.epoch}
		}
		n.Children[p] = child
		n = child
	}
	return n
}

// cowPath walks to the node at parts copy-on-write without creating
// anything, returning the writable node — or nil when the path does not
// fully exist (the existing prefix may have been cloned, which changes no
// content).
func (t *Tree) cowPath(parts []string) *Node {
	if t.Root == nil {
		return nil
	}
	t.Root = t.prep(t.Root)
	n := t.Root
	for _, p := range parts {
		if n.Children == nil {
			return nil
		}
		child, ok := n.Children[p]
		if !ok {
			return nil
		}
		child = t.prep(child)
		n.Children[p] = child
		n = child
	}
	return n
}

// SnapshotView implements core.VersionedRoot: it returns an immutable
// view of the tree sharing every node, and advances the epoch so that
// every later mutation copies the nodes the view can reach. Called by the
// store's single writer after each applied update.
func (t *Tree) SnapshotView() any {
	t.epoch++
	r := t.Root
	if r == nil {
		r = &Node{}
	}
	return &Tree{Root: r}
}

// FindNode walks to the node named by parts, or nil. Exported for the
// replica package's stamped conflict resolution. The returned node must
// not be mutated; use EnsureNode for a writable node.
func (t *Tree) FindNode(parts []string) *Node { return t.find(parts) }

// EnsureNode walks to parts copy-on-write, creating intermediate nodes,
// and returns a node the caller may mutate before the update finishes.
// Exported for the replica package's stamped conflict resolution.
func (t *Tree) EnsureNode(parts []string) *Node { return t.ensure(parts) }

// copyNode deep-copies a subtree.
func copyNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := &Node{Value: n.Value, HasValue: n.HasValue, Stamp: n.Stamp, StampBy: n.StampBy}
	if n.Children != nil {
		out.Children = make(map[string]*Node, len(n.Children))
		for k, c := range n.Children {
			out.Children[k] = copyNode(c)
		}
	}
	return out
}

// countNodes reports the number of nodes in a subtree, itself included.
func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// --- update types (single-shot transactions) ---

// SetValue sets the value at Path, creating intermediate nodes.
type SetValue struct {
	Path  []string
	Value string
}

// Verify implements core.Update.
func (u *SetValue) Verify(root any) error {
	_, err := treeOf(root)
	return err
}

// Apply implements core.Update.
func (u *SetValue) Apply(root any) error {
	t, err := treeOf(root)
	if err != nil {
		return err
	}
	n := t.ensure(u.Path)
	n.Value = u.Value
	n.HasValue = true
	return nil
}

// DeleteSubtree removes the node at Path and everything beneath it. Its
// precondition is that the node exists.
type DeleteSubtree struct {
	Path []string
}

// Verify implements core.Update.
func (u *DeleteSubtree) Verify(root any) error {
	t, err := treeOf(root)
	if err != nil {
		return err
	}
	if len(u.Path) == 0 {
		return errors.New("nameserver: cannot delete the root")
	}
	if t.find(u.Path) == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, JoinPath(u.Path))
	}
	return nil
}

// Apply implements core.Update.
func (u *DeleteSubtree) Apply(root any) error {
	t, err := treeOf(root)
	if err != nil {
		return err
	}
	parent := t.cowPath(u.Path[:len(u.Path)-1])
	if parent == nil || parent.Children == nil {
		return nil // deleted by an equivalent replayed update; idempotent
	}
	delete(parent.Children, u.Path[len(u.Path)-1])
	return nil
}

// PutSubtree installs an entire subtree at Path, replacing whatever was
// there — the paper's "update operations for any set of sub-trees".
type PutSubtree struct {
	Path    []string
	Subtree *Node
}

// Verify implements core.Update.
func (u *PutSubtree) Verify(root any) error {
	if u.Subtree == nil {
		return errors.New("nameserver: nil subtree")
	}
	if len(u.Path) == 0 {
		return errors.New("nameserver: cannot replace the root; use paths")
	}
	_, err := treeOf(root)
	return err
}

// Apply implements core.Update.
func (u *PutSubtree) Apply(root any) error {
	t, err := treeOf(root)
	if err != nil {
		return err
	}
	parent := t.ensure(u.Path[:len(u.Path)-1])
	if parent.Children == nil {
		parent.Children = make(map[string]*Node)
	}
	// Deep-copy so the caller's subtree and the database never alias.
	parent.Children[u.Path[len(u.Path)-1]] = copyNode(u.Subtree)
	return nil
}

// Move renames the subtree at From to To. Preconditions: From exists, To
// does not, and To is not inside From.
type Move struct {
	From, To []string
}

// Verify implements core.Update.
func (u *Move) Verify(root any) error {
	t, err := treeOf(root)
	if err != nil {
		return err
	}
	if len(u.From) == 0 || len(u.To) == 0 {
		return errors.New("nameserver: move involving the root")
	}
	if t.find(u.From) == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, JoinPath(u.From))
	}
	if t.find(u.To) != nil {
		return fmt.Errorf("nameserver: destination %s exists", JoinPath(u.To))
	}
	if isPrefix(u.From, u.To) {
		return fmt.Errorf("nameserver: cannot move %s into itself", JoinPath(u.From))
	}
	return nil
}

// Apply implements core.Update.
func (u *Move) Apply(root any) error {
	t, err := treeOf(root)
	if err != nil {
		return err
	}
	n := t.find(u.From)
	if n == nil {
		return fmt.Errorf("nameserver: move source vanished: %s", JoinPath(u.From))
	}
	// The moved subtree itself is shared, not copied: it is immutable
	// under the copy-on-write discipline, so the old snapshot keeps
	// reaching it at From while the new version reaches it at To.
	fromParent := t.cowPath(u.From[:len(u.From)-1])
	delete(fromParent.Children, u.From[len(u.From)-1])
	toParent := t.ensure(u.To[:len(u.To)-1])
	if toParent.Children == nil {
		toParent.Children = make(map[string]*Node)
	}
	toParent.Children[u.To[len(u.To)-1]] = n
	return nil
}

func isPrefix(prefix, path []string) bool {
	if len(path) < len(prefix) {
		return false
	}
	for i := range prefix {
		if path[i] != prefix[i] {
			return false
		}
	}
	return true
}

func treeOf(root any) (*Tree, error) {
	t, ok := root.(*Tree)
	if !ok {
		return nil, fmt.Errorf("nameserver: root is %T, not *Tree", root)
	}
	if t.Root == nil {
		t.Root = &Node{Children: make(map[string]*Node)}
	}
	return t, nil
}

// --- read helpers used by the server and by tests ---

// lookup returns the value at parts.
func (t *Tree) lookup(parts []string) (string, error) {
	n := t.find(parts)
	if n == nil {
		return "", fmt.Errorf("%w: %s", ErrNotFound, JoinPath(parts))
	}
	if !n.HasValue {
		return "", fmt.Errorf("%w: %s", ErrNoValue, JoinPath(parts))
	}
	return n.Value, nil
}

// list returns the sorted arc labels under parts.
func (t *Tree) list(parts []string) ([]string, error) {
	n := t.find(parts)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, JoinPath(parts))
	}
	out := make([]string, 0, len(n.Children))
	for k := range n.Children {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}
