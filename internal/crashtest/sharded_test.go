package crashtest

import (
	"bytes"
	"math/rand"
	"testing"

	"smalldb/internal/nameserver"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
)

// TestShardedReplayDifferential is the correctness proof for the sharded
// log: drive the same 10k-op seeded workload through a 4-stream store and
// a single-stream store, restart both, and require byte-identical pickled
// roots — which must also match the in-memory oracle. The sharded image is
// additionally recovered sequentially (ReplayWorkers=1) and pipelined
// (ReplayWorkers=8): the sequence-merge heap must not change what any
// stream layout recovers to.
func TestShardedReplayDifferential(t *testing.T) {
	const entries = 10000
	build := func(shards int) vfs.FS {
		fs := vfs.NewMem(13)
		srv, err := nameserver.Open(nameserver.Config{FS: fs, LogShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		oracle := nameserver.NewTree()
		for i := 0; i < entries; i++ {
			u := genUpdate(rng, oracle, i)
			if err := u.Apply(oracle); err != nil {
				t.Fatalf("oracle apply %d: %v", i, err)
			}
			if err := srv.Store().Apply(u); err != nil {
				t.Fatalf("shards=%d: store apply %d: %v", shards, i, err)
			}
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		return fs
	}

	rng := rand.New(rand.NewSource(13))
	oracle := nameserver.NewTree()
	for i := 0; i < entries; i++ {
		if err := genUpdate(rng, oracle, i).Apply(oracle); err != nil {
			t.Fatal(err)
		}
	}
	wantFP := fingerprintTree(oracle)

	pickled := func(fs vfs.FS, shards, workers int) []byte {
		srv, err := nameserver.Open(nameserver.Config{FS: fs, LogShards: shards, ReplayWorkers: workers})
		if err != nil {
			t.Fatalf("shards=%d workers=%d: recovery failed: %v", shards, workers, err)
		}
		defer srv.Close()
		if seq := srv.Store().AppliedSeq(); seq != entries {
			t.Errorf("shards=%d workers=%d: recovered %d updates, want %d", shards, workers, seq, entries)
		}
		if got, err := storeFingerprint(srv); err != nil || got != wantFP {
			t.Errorf("shards=%d workers=%d: recovered state diverges from the oracle (%v)", shards, workers, err)
		}
		var buf []byte
		if err := srv.Store().View(func(root any) error {
			var perr error
			buf, perr = pickle.AppendMarshal(nil, root.(*nameserver.Tree))
			return perr
		}); err != nil {
			t.Fatal(err)
		}
		return buf
	}

	singleFS, shardedFS := build(1), build(4)
	single := pickled(singleFS, 1, 0)
	shardedSeq := pickled(shardedFS, 4, 1)
	shardedPipe := pickled(shardedFS, 4, 8)
	if !bytes.Equal(single, shardedSeq) {
		t.Error("sharded post-restart root is not byte-identical to the single-stream root")
	}
	if !bytes.Equal(shardedSeq, shardedPipe) {
		t.Error("pipelined sharded replay diverges from sequential sharded replay")
	}
}

// TestShardedStoreTorture sweeps every crash point of a store-mode workload
// on a 4-stream log: recovery must surface exactly the epoch-acked prefix —
// acknowledged updates durable across their streams, unacknowledged epochs
// fully discarded by the gap rule.
func TestShardedStoreTorture(t *testing.T) {
	res, err := Run(Config{Seed: 21, Ops: 12, Mode: ModeStore, LogShards: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points < 20 {
		t.Fatalf("suspiciously few crash points: %d", res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestShardedStoreTortureBatched batches updates so each epoch spans
// several streams: the serial seal then syncs them one at a time, and the
// sweep's crash points land after some streams of an epoch synced but
// before the rest — the whole epoch must be discarded on recovery, because
// it was never acknowledged.
func TestShardedStoreTortureBatched(t *testing.T) {
	res, err := Run(Config{Seed: 22, Ops: 12, Mode: ModeStore, LogShards: 4, Batch: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestShardedReplicaTorture is the replica-mode counterpart: node "a" runs
// a 4-stream log with batched epochs, crashes at every op index, and
// anti-entropy with the crash-free peer must restore every acknowledged
// update before the workload finishes on both replicas.
func TestShardedReplicaTorture(t *testing.T) {
	res, err := Run(Config{Seed: 23, Ops: 8, Mode: ModeReplica, LogShards: 4, Batch: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestShardedOverlapTorture commits updates inside each checkpoint's mirror
// window on a sharded log: the window dual-writes every stream, and every
// crash point across the multi-file attach/sync/switch must still recover
// the exact acked prefix.
func TestShardedOverlapTorture(t *testing.T) {
	res, err := Run(Config{Seed: 24, Ops: 10, Mode: ModeStore, LogShards: 3, OverlapCheckpoints: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}
