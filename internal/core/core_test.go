package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"smalldb/internal/checkpoint"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
)

// A minimal database for testing: a string→string table.
type kvRoot struct {
	Data map[string]string
}

func newKV() any { return &kvRoot{Data: make(map[string]string)} }

type putKV struct {
	Key, Value string
}

func (u *putKV) Verify(root any) error {
	if u.Key == "" {
		return errors.New("empty key")
	}
	return nil
}

func (u *putKV) Apply(root any) error {
	root.(*kvRoot).Data[u.Key] = u.Value
	return nil
}

type delKV struct {
	Key string
}

func (u *delKV) Verify(root any) error {
	if _, ok := root.(*kvRoot).Data[u.Key]; !ok {
		return fmt.Errorf("no such key %q", u.Key)
	}
	return nil
}

func (u *delKV) Apply(root any) error {
	delete(root.(*kvRoot).Data, u.Key)
	return nil
}

// brokenApply violates the Verify/Apply contract.
type brokenApply struct{ X int }

func (u *brokenApply) Verify(root any) error { return nil }
func (u *brokenApply) Apply(root any) error  { return errors.New("apply bug") }

func init() {
	pickle.Register(&kvRoot{})
	RegisterUpdate(&putKV{})
	RegisterUpdate(&delKV{})
	RegisterUpdate(&brokenApply{})
}

func openKV(t *testing.T, fs vfs.FS, mod ...func(*Config)) *Store {
	t.Helper()
	cfg := Config{FS: fs, NewRoot: newKV, Retain: 1}
	for _, m := range mod {
		m(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, s *Store, key string) (string, bool) {
	t.Helper()
	var v string
	var ok bool
	if err := s.View(func(root any) error {
		v, ok = root.(*kvRoot).Data[key]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return v, ok
}

func put(t *testing.T, s *Store, k, v string) {
	t.Helper()
	if err := s.Apply(&putKV{Key: k, Value: v}); err != nil {
		t.Fatalf("put %s: %v", k, err)
	}
}

func TestFreshOpenAndBasicOps(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()

	if _, ok := get(t, s, "a"); ok {
		t.Fatal("fresh store not empty")
	}
	put(t, s, "a", "1")
	put(t, s, "b", "2")
	if v, ok := get(t, s, "a"); !ok || v != "1" {
		t.Errorf("a = %q, %v", v, ok)
	}
	if err := s.Apply(&delKV{Key: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := get(t, s, "a"); ok {
		t.Error("a survived delete")
	}
}

func TestDurabilityAcrossRestart(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	for i := 0; i < 50; i++ {
		put(t, s, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	s.Close()

	s2 := openKV(t, fs)
	defer s2.Close()
	for i := 0; i < 50; i++ {
		if v, ok := get(t, s2, fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q, %v", i, v, ok)
		}
	}
	st := s2.Stats()
	if st.RestartEntries != 50 {
		t.Errorf("RestartEntries = %d", st.RestartEntries)
	}
}

func TestDurabilityAcrossCrash(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	put(t, s, "committed", "yes")
	// Crash without Close: unsynced buffers vanish; the committed
	// update's log entry was synced by Append.
	fs.Crash()

	s2 := openKV(t, fs)
	defer s2.Close()
	if v, ok := get(t, s2, "committed"); !ok || v != "yes" {
		t.Fatalf("committed update lost: %q %v", v, ok)
	}
}

func TestFailedCommitNotVisibleAfterRestart(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	put(t, s, "before", "x")

	boom := errors.New("disk died")
	fs.FailSync = func(string) error { return boom }
	if err := s.Apply(&putKV{Key: "lost", Value: "y"}); !errors.Is(err, boom) {
		t.Fatalf("expected commit failure, got %v", err)
	}
	fs.FailSync = nil
	fs.Crash()

	s2 := openKV(t, fs)
	defer s2.Close()
	if _, ok := get(t, s2, "lost"); ok {
		t.Error("uncommitted update visible after restart")
	}
	if v, _ := get(t, s2, "before"); v != "x" {
		t.Error("committed update lost")
	}
}

func TestPreconditionFailure(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	pre := s.Stats()
	if err := s.Apply(&delKV{Key: "ghost"}); err == nil || !strings.Contains(err.Error(), "no such key") {
		t.Fatalf("got %v", err)
	}
	post := s.Stats()
	if post.LogBytes != pre.LogBytes {
		t.Error("failed precondition grew the log")
	}
	if post.Updates != pre.Updates {
		t.Error("failed precondition counted as update")
	}
}

func TestCheckpointAndFastRestart(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	for i := 0; i < 30; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Errorf("version %d", s.Version())
	}
	// Post-checkpoint updates land in the new log.
	put(t, s, "after", "cp")
	s.Close()

	s2 := openKV(t, fs)
	defer s2.Close()
	st := s2.Stats()
	if st.RestartEntries != 1 {
		t.Errorf("RestartEntries = %d, want 1 (only post-checkpoint update)", st.RestartEntries)
	}
	if v, _ := get(t, s2, "k7"); v != "v" {
		t.Error("pre-checkpoint data lost")
	}
	if v, _ := get(t, s2, "after"); v != "cp" {
		t.Error("post-checkpoint update lost")
	}
}

func TestUpdatesAfterCheckpointContinueSequence(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	put(t, s, "a", "1")
	seqBefore := s.AppliedSeq()
	s.Checkpoint()
	put(t, s, "b", "2")
	if got := s.AppliedSeq(); got != seqBefore+1 {
		t.Errorf("sequence reset across checkpoint: %d -> %d", seqBefore, got)
	}
	s.Close()
	s2 := openKV(t, fs)
	defer s2.Close()
	if v, _ := get(t, s2, "b"); v != "2" {
		t.Error("post-checkpoint update lost")
	}
}

func TestCrashDuringCheckpoint(t *testing.T) {
	// Fail the checkpoint switch at each sync point; the store must
	// keep working against the old version, and a restart must see all
	// committed updates.
	for failAt := 1; failAt <= 4; failAt++ {
		fs := vfs.NewMem(int64(failAt))
		s := openKV(t, fs)
		for i := 0; i < 10; i++ {
			put(t, s, fmt.Sprintf("k%d", i), "v")
		}
		count := 0
		boom := errors.New("injected")
		fs.FailSync = func(name string) error {
			count++
			if count >= failAt {
				return boom
			}
			return nil
		}
		cperr := s.Checkpoint()
		fs.FailSync = nil
		if cperr == nil {
			// Sync points beyond the protocol's; checkpoint done.
			s.Close()
		} else {
			// Old version still current; more updates must work.
			if err := s.Apply(&putKV{Key: "post-fail", Value: "v"}); err != nil {
				t.Fatalf("failAt %d: store unusable after failed checkpoint: %v", failAt, err)
			}
			s.Close()
		}
		fs.Crash()
		s2 := openKV(t, fs)
		for i := 0; i < 10; i++ {
			if _, ok := get(t, s2, fmt.Sprintf("k%d", i)); !ok {
				t.Fatalf("failAt %d: k%d lost", failAt, i)
			}
		}
		if cperr != nil {
			if v, _ := get(t, s2, "post-fail"); v != "v" {
				t.Fatalf("failAt %d: post-failure update lost", failAt)
			}
		}
		s2.Close()
	}
}

// waitCheckpoints waits for the background auto-checkpoint goroutine to
// record at least n checkpoints (auto-checkpoints run off the update path).
func waitCheckpoints(t *testing.T, s *Store, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Checkpoints < n {
		if time.Now().After(deadline) {
			t.Fatalf("auto checkpoint never fired (have %d, want %d; last err %v)",
				s.Stats().Checkpoints, n, s.LastCheckpointErr())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAutoCheckpointByEntries(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.MaxLogEntries = 10 })
	defer s.Close()
	for i := 0; i < 25; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	waitCheckpoints(t, s, 1)
}

func TestAutoCheckpointByBytes(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.MaxLogBytes = 200 })
	defer s.Close()
	for i := 0; i < 20; i++ {
		put(t, s, fmt.Sprintf("key-%d", i), strings.Repeat("v", 50))
	}
	waitCheckpoints(t, s, 1)
}

func TestCheckpointEvery(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	s.CheckpointEvery(10 * time.Millisecond)
	put(t, s, "a", "1")
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer checkpoint never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
}

func TestApplyContractViolationPoisons(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	if err := s.Apply(&brokenApply{}); err == nil {
		t.Fatal("broken Apply succeeded")
	}
	if s.Err() == nil {
		t.Fatal("store not poisoned")
	}
	if err := s.Apply(&putKV{Key: "k", Value: "v"}); err == nil {
		t.Error("poisoned store accepted an update")
	}
	// Enquiries still work on the (possibly stale) memory image.
	if err := s.View(func(any) error { return nil }); err != nil {
		t.Errorf("View on poisoned store: %v", err)
	}
}

func TestGroupCommitMode(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.GroupCommit = true })
	var wg sync.WaitGroup
	const writers, each = 8, 20
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s.Apply(&putKV{Key: fmt.Sprintf("w%d-%d", w, i), Value: "v"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()

	s2 := openKV(t, fs)
	defer s2.Close()
	n := 0
	s2.View(func(root any) error {
		n = len(root.(*kvRoot).Data)
		return nil
	})
	if n != writers*each {
		t.Errorf("recovered %d keys, want %d", n, writers*each)
	}
}

func TestGroupCommitCheckpointInterleaving(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.GroupCommit = true })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Apply(&putKV{Key: fmt.Sprintf("w%d-%d", w, i), Value: "v"})
				i++
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Errorf("checkpoint %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	s.Close()
	s2 := openKV(t, fs)
	s2.Close()
}

func TestCoarseLockingMode(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.CoarseLocking = true })
	put(t, s, "a", "1")
	if v, _ := get(t, s, "a"); v != "1" {
		t.Error("coarse mode broken")
	}
	s.Close()
	s2 := openKV(t, fs)
	defer s2.Close()
	if v, _ := get(t, s2, "a"); v != "1" {
		t.Error("coarse mode not durable")
	}
}

func TestHardErrorFallbackToPreviousCheckpoint(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs) // Retain: 1
	put(t, s, "era1", "x")
	if err := s.Checkpoint(); err != nil { // version 2; version 1 retained
		t.Fatal(err)
	}
	put(t, s, "era2", "y")
	s.Close()

	// Hard failure: the current checkpoint (checkpoint2) is unreadable.
	if err := fs.Damage(checkpoint.CheckpointName(2), 0, 10); err != nil {
		t.Fatal(err)
	}

	s2 := openKV(t, fs)
	defer s2.Close()
	st := s2.Stats()
	if !st.RestartUsedFallback {
		t.Error("fallback not used")
	}
	if v, _ := get(t, s2, "era1"); v != "x" {
		t.Error("era1 lost")
	}
	if v, _ := get(t, s2, "era2"); v != "y" {
		t.Error("era2 (current log) lost")
	}
}

func TestHardErrorNoFallbackWithoutRetention(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.Retain = 0 })
	put(t, s, "a", "1")
	s.Checkpoint()
	s.Close()
	fs.Damage(checkpoint.CheckpointName(2), 0, 10)
	if _, err := Open(Config{FS: fs, NewRoot: newKV}); err == nil {
		t.Error("open succeeded with damaged checkpoint and no retention")
	}
}

func TestSkipDamagedLogEntries(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	put(t, s, "a", "1")
	sizeBefore := s.Stats().LogBytes
	put(t, s, "b", "2")
	put(t, s, "c", "3")
	s.Close()

	// Damage the second entry's payload.
	fs.Damage(checkpoint.LogName(1), sizeBefore+8, 4)

	if _, err := Open(Config{FS: fs, NewRoot: newKV}); err == nil {
		t.Fatal("open succeeded over damaged log without SkipDamagedLogEntries")
	}
	s2 := openKV(t, fs, func(c *Config) { c.SkipDamagedLogEntries = true })
	defer s2.Close()
	if st := s2.Stats(); st.RestartSkippedDamaged != 1 {
		t.Errorf("RestartSkippedDamaged = %d", st.RestartSkippedDamaged)
	}
	if _, ok := get(t, s2, "b"); ok {
		t.Error("damaged update resurrected")
	}
	if v, _ := get(t, s2, "c"); v != "3" {
		t.Error("update after the damaged one lost")
	}
}

func TestConcurrentViewsAndUpdates(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.View(func(root any) error {
					_ = len(root.(*kvRoot).Data)
					return nil
				})
			}
		}()
	}
	for i := 0; i < 100; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	close(stop)
	wg.Wait()
	if n := len(mustRoot(t, s).Data); n != 100 {
		t.Errorf("final size %d", n)
	}
}

func mustRoot(t *testing.T, s *Store) *kvRoot {
	t.Helper()
	var r *kvRoot
	s.View(func(root any) error { r = root.(*kvRoot); return nil })
	return r
}

func TestStatsBreakdown(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	for i := 0; i < 10; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	st := s.Stats()
	if st.Updates != 10 {
		t.Errorf("Updates = %d", st.Updates)
	}
	if st.PickleTime <= 0 || st.CommitTime <= 0 {
		t.Errorf("phase timers not recorded: %+v", st)
	}
	if st.LogEntries != 10 {
		t.Errorf("LogEntries = %d", st.LogEntries)
	}
}

func TestClosedStore(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	s.Close()
	if err := s.Apply(&putKV{Key: "k", Value: "v"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Apply: %v", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestAuditTrailHistory(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.ArchiveLogs = true; c.Retain = 0 })
	// Three eras of updates separated by checkpoints.
	put(t, s, "era1-a", "1")
	put(t, s, "era1-b", "2")
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	put(t, s, "era2-a", "3")
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	put(t, s, "era3-a", "4")

	var seqs []uint64
	var keys []string
	err := s.History(func(seq uint64, u Update) error {
		seqs = append(seqs, seq)
		keys = append(keys, u.(*putKV).Key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 {
		t.Fatalf("history has %d entries: %v", len(seqs), keys)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Errorf("seq[%d] = %d", i, seq)
		}
	}
	want := []string{"era1-a", "era1-b", "era2-a", "era3-a"}
	for i, k := range keys {
		if k != want[i] {
			t.Errorf("keys = %v", keys)
			break
		}
	}

	// The archives survive a restart and History still works.
	s.Close()
	s2 := openKV(t, fs, func(c *Config) { c.ArchiveLogs = true; c.Retain = 0 })
	defer s2.Close()
	n := 0
	if err := s2.History(func(uint64, Update) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("history after restart: %d entries", n)
	}
}

func TestHistoryWithoutArchiveCoversCurrentLog(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.Retain = 0 })
	put(t, s, "a", "1")
	s.Checkpoint() // era-1 log deleted (no archive)
	put(t, s, "b", "2")
	var keys []string
	if err := s.History(func(_ uint64, u Update) error {
		keys = append(keys, u.(*putKV).Key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "b" {
		t.Errorf("history = %v (only the current era is on disk)", keys)
	}
	s.Close()
}

func TestHistoryConcurrentWithEnquiries(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	for i := 0; i < 20; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			get(t, s, "k3")
		}
	}()
	n := 0
	if err := s.History(func(uint64, Update) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	<-done
	if n != 20 {
		t.Errorf("history entries: %d", n)
	}
}

// The E9 property, in miniature: run updates with a crash injected at a
// random sync, recover, and check that the surviving set is exactly a
// prefix of the acknowledged updates.
func TestCrashAnywherePrefixProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		fs := vfs.NewMem(seed)
		s := openKV(t, fs)

		crashAfter := int(seed % 17)
		count := 0
		boom := errors.New("crash")
		fs.FailSync = func(string) error {
			count++
			if count > crashAfter {
				return boom
			}
			return nil
		}
		acked := 0
		for i := 0; i < 20; i++ {
			if err := s.Apply(&putKV{Key: fmt.Sprintf("k%d", i), Value: "v"}); err != nil {
				break
			}
			acked++
		}
		fs.FailSync = nil
		fs.Crash()

		s2, err := Open(Config{FS: fs, NewRoot: newKV})
		if err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}
		for i := 0; i < acked; i++ {
			if _, ok := get(t, s2, fmt.Sprintf("k%d", i)); !ok {
				t.Fatalf("seed %d: acknowledged update k%d lost", seed, i)
			}
		}
		// Anything beyond acked+1 must be absent (at most the one
		// in-flight update may have committed without an ack).
		for i := acked + 1; i < 20; i++ {
			if _, ok := get(t, s2, fmt.Sprintf("k%d", i)); ok {
				t.Fatalf("seed %d: unacknowledged update k%d visible", seed, i)
			}
		}
		s2.Close()
	}
}
