package lintest

import (
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
	"smalldb/internal/vfs"
)

func openTree(t *testing.T, mod ...func(*core.Config)) *core.Store {
	t.Helper()
	cfg := core.Config{FS: vfs.NewMem(1), NewRoot: nameserver.NewRoot, Retain: 1}
	for _, m := range mod {
		m(&cfg)
	}
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestLinearizable exercises the checker at full scale: a 10k-op history
// against 32 concurrent snapshot readers, each read validated against the
// closed-form model and the whole history checked for real-time bounds.
// Run under -race in CI; -short scales the history down.
func TestLinearizable(t *testing.T) {
	cfg := Config{Ops: 10000, Readers: 32}
	if testing.Short() {
		cfg = Config{Ops: 2000, Readers: 8}
	}

	t.Run("default", func(t *testing.T) {
		st := openTree(t)
		defer st.Close()
		stats, err := Run(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Ops != uint64(cfg.Ops) {
			t.Fatalf("committed %d ops, want %d", stats.Ops, cfg.Ops)
		}
		if stats.Reads == 0 {
			t.Fatal("no reads validated")
		}
		t.Logf("validated %d snapshot reads against %d ops", stats.Reads, stats.Ops)
	})

	// Group commit publishes a version before the batched sync returns
	// (visible-before-durable, matching the prior locked-View semantics);
	// the history must still be linearizable.
	t.Run("group-commit", func(t *testing.T) {
		st := openTree(t, func(c *core.Config) { c.GroupCommit = true })
		defer st.Close()
		if _, err := Run(st, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLockedEnquiriesAblation confirms the ablation really disables
// versioned reads: SnapshotAt refuses, and enquiries fall back to the
// shared lock.
func TestLockedEnquiriesAblation(t *testing.T) {
	st := openTree(t, func(c *core.Config) { c.LockedEnquiries = true })
	defer st.Close()
	if _, err := st.SnapshotAt(); !errors.Is(err, ErrNotVersioned) {
		t.Fatalf("SnapshotAt = %v, want ErrNotVersioned", err)
	}
	if _, err := Run(st, Config{Ops: 10, Readers: 1}); !errors.Is(err, ErrNotVersioned) {
		t.Fatalf("Run = %v, want ErrNotVersioned", err)
	}
}

// TestStressNoBlockedReads is the read-availability stress test: 32
// readers, one writer, and one checkpointer run concurrently while a
// monitor polls the lock; no enquiry may ever hold (or wait on) the
// shared lock, and the store must publish and reclaim versions the whole
// time. Under -race this also hammers the publication and reclamation
// memory ordering.
func TestStressNoBlockedReads(t *testing.T) {
	reg := obs.NewRegistry()
	st := openTree(t, func(c *core.Config) { c.Obs = reg })
	defer st.Close()

	dur := 2 * time.Second
	if testing.Short() {
		dur = 250 * time.Millisecond
	}

	const readers = 32
	var stop atomic.Bool
	var reads, writes, checkpoints atomic.Uint64
	var sharedSeen atomic.Int64
	errs := make(chan error, readers+3)
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			key := []string{"stress", "k" + strconv.Itoa(r%8)}
			for !stop.Load() {
				err := st.View(func(root any) error {
					root.(*nameserver.Tree).FindNode(key)
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				reads.Add(1)
				// Lock-free reads never block, so on a small GOMAXPROCS
				// spinning readers would keep the writer and checkpointer
				// runnable-but-unscheduled forever; yield between reads.
				runtime.Gosched()
			}
		}(r)
	}

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			u := &nameserver.SetValue{
				Path:  []string{"stress", "k" + strconv.Itoa(i%8)},
				Value: strconv.Itoa(i),
			}
			if err := st.Apply(u); err != nil {
				errs <- err
				return
			}
			writes.Add(1)
			runtime.Gosched()
		}
	}()

	wg.Add(1)
	go func() { // checkpointer
		defer wg.Done()
		for !stop.Load() {
			if err := st.Checkpoint(); err != nil {
				errs <- err
				return
			}
			checkpoints.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	wg.Add(1)
	go func() { // monitor: the shared lock must stay untouched throughout
		defer wg.Done()
		for !stop.Load() {
			if shared, _, _ := st.LockHolders(); shared > 0 {
				sharedSeen.Add(int64(shared))
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if reads.Load() == 0 || writes.Load() == 0 || checkpoints.Load() == 0 {
		t.Fatalf("idle stress: reads=%d writes=%d checkpoints=%d",
			reads.Load(), writes.Load(), checkpoints.Load())
	}
	if n := sharedSeen.Load(); n != 0 {
		t.Fatalf("shared lock held %d times during lock-free reads", n)
	}
	if n := reg.Counter("core_enquiries_locked").Value(); n != 0 {
		t.Fatalf("%d enquiries fell back to the shared lock", n)
	}
	if n := reg.Counter("core_versions_published").Value(); n == 0 {
		t.Fatal("no versions published during stress")
	}
	if n := reg.Counter("core_versions_reclaimed").Value(); n == 0 {
		t.Fatal("no versions reclaimed during stress")
	}
	t.Logf("reads=%d writes=%d checkpoints=%d published=%d reclaimed=%d",
		reads.Load(), writes.Load(), checkpoints.Load(),
		reg.Counter("core_versions_published").Value(),
		reg.Counter("core_versions_reclaimed").Value())
}

// TestModelClosedForm pins the analytic model itself: lastWrite must name
// the greatest i ≤ j with i ≡ c (mod keys), or 0 when no such op ≥ 1
// exists.
func TestModelClosedForm(t *testing.T) {
	const keys = 4
	for j := uint64(0); j <= 20; j++ {
		for c := 0; c < keys; c++ {
			// Reference: brute force over the history.
			want := uint64(0)
			for i := uint64(1); i <= j; i++ {
				if i%uint64(keys) == uint64(c) {
					want = i
				}
			}
			if got := lastWrite(j, c, keys); got != want {
				t.Fatalf("lastWrite(%d,%d,%d) = %d, want %d", j, c, keys, got, want)
			}
		}
	}
}
