package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// A Registry names and owns a set of metrics. Metric getters are
// get-or-create, so independent subsystems sharing a registry converge on
// the same metric objects by name. A nil *Registry hands out nil metrics
// (whose methods are no-ops), so wiring is unconditional at every call
// site.
//
// Naming convention: lowercase snake_case, prefixed by subsystem, with a
// unit suffix for histograms — core_update_commit_ns, wal_flush_bytes,
// rpc_open_conns.
type Registry struct {
	mu   sync.Mutex
	vars map[string]any // *Counter | *Gauge | *Histogram | func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]any)}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		if c, ok := v.(*Counter); ok {
			return c
		}
		return nil // name already taken by another kind; drop updates
	}
	c := &Counter{}
	r.vars[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		if g, ok := v.(*Gauge); ok {
			return g
		}
		return nil
	}
	g := &Gauge{}
	r.vars[name] = g
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		if h, ok := v.(*Histogram); ok {
			return h
		}
		return nil
	}
	h := NewHistogram()
	r.vars[name] = h
	return h
}

// Register installs an existing metric (or a func() any computed on
// snapshot) under name, replacing any previous entry. Subsystems that own
// their metrics privately use it to additionally expose them here.
func (r *Registry) Register(name string, v any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.vars[name] = v
	r.mu.Unlock()
}

// Names reports the registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.vars))
	for n := range r.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Each calls fn for every metric in name order. The value is the live
// metric object (*Counter, *Gauge, *Histogram) or the result of a
// registered func.
func (r *Registry) Each(fn func(name string, v any)) {
	r.each(func(name string, v any) {
		if f, ok := v.(func() any); ok {
			fn(name, f())
			return
		}
		fn(name, v)
	})
}

// each is Each without evaluating registered funcs.
func (r *Registry) each(fn func(name string, v any)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	type entry struct {
		name string
		v    any
	}
	entries := make([]entry, 0, len(r.vars))
	for n, v := range r.vars {
		entries = append(entries, entry{n, v})
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		fn(e.name, e.v)
	}
}

// Snapshot renders every metric to a JSON-encodable value: counters to
// uint64, gauges to int64, histograms to their Snapshot.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	r.Each(func(name string, v any) {
		out[name] = snapshotValue(v)
	})
	return out
}

func snapshotValue(v any) any {
	switch m := v.(type) {
	case *Counter:
		return m.Value()
	case *Gauge:
		return m.Value()
	case *Histogram:
		return m.Snapshot()
	case Snapshot:
		return m
	default:
		return v
	}
}

// MarshalJSON encodes a Snapshot with its summary fields.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return []byte(s.String()), nil
}

// WriteJSON writes the registry snapshot as pretty-printed JSON — the
// /metrics endpoint's body.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes a human-readable rendering of every metric — the /stats
// endpoint's body. Histogram names ending in _ns are formatted as
// durations, _bytes as sizes.
func (r *Registry) WriteText(w io.Writer) {
	r.Each(func(name string, v any) {
		switch m := v.(type) {
		case *Counter:
			fmt.Fprintf(w, "%-40s %d\n", name, m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%-40s %d\n", name, m.Value())
		case *Histogram:
			writeHistogramText(w, name, m.Snapshot())
		case Snapshot:
			writeHistogramText(w, name, m)
		default:
			fmt.Fprintf(w, "%-40s %v\n", name, m)
		}
	})
}

func writeHistogramText(w io.Writer, name string, s Snapshot) {
	if hasSuffix(name, "_ns") {
		fmt.Fprintf(w, "%-40s %s\n", name, s.DurationString())
	} else if hasSuffix(name, "_bytes") {
		fmt.Fprintf(w, "%-40s %s\n", name, s.SizeString())
	} else {
		fmt.Fprintf(w, "%-40s %s\n", name, s.String())
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// PublishExpvar publishes every currently registered metric into the
// process-global expvar namespace under prefix+name. Names already
// published (by an earlier call or another registry) are skipped, since
// expvar.Publish panics on duplicates.
func (r *Registry) PublishExpvar(prefix string) {
	r.each(func(name string, v any) {
		full := prefix + name
		if expvar.Get(full) != nil {
			return
		}
		switch m := v.(type) {
		case *Counter:
			expvar.Publish(full, m)
		case *Gauge:
			expvar.Publish(full, m)
		case *Histogram:
			expvar.Publish(full, m)
		case func() any:
			expvar.Publish(full, expvar.Func(m))
		default:
			val := v
			expvar.Publish(full, expvar.Func(func() any { return val }))
		}
	})
}
