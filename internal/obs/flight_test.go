package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"smalldb/internal/vfs"
)

func TestFlightRoundTrip(t *testing.T) {
	fs := vfs.NewMem(1)
	fr, err := OpenFlight(FlightConfig{FS: fs, FlushEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := Event{
		Name:   "update.commit",
		Time:   time.Unix(100, 250),
		Dur:    3 * time.Millisecond,
		Err:    fmt.Errorf("boom"),
		Trace:  TraceID(0xdead),
		Span:   SpanID(0xbeef),
		Parent: SpanID(0xcafe),
		Attrs:  []Attr{A("seq", 7), A("bytes", 512)},
	}
	fr.Emit(want)
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadFlight(fs, "")
	if err != nil {
		t.Fatal(err)
	}
	// Index 0 is the flight.start marker OpenFlight writes.
	if len(events) != 2 || events[0].Name != "flight.start" {
		t.Fatalf("decoded %d events (%v), want flight.start + 1", len(events), events)
	}
	got := events[1]
	if got.Name != want.Name || !got.Time.Equal(want.Time) || got.Dur != want.Dur {
		t.Errorf("identity fields: %+v", got)
	}
	if got.Trace != want.Trace || got.Span != want.Span || got.Parent != want.Parent {
		t.Errorf("trace fields: %+v", got)
	}
	if got.Err == nil || got.Err.Error() != "boom" {
		t.Errorf("err: %v", got.Err)
	}
	if len(got.Attrs) != 2 || got.Attrs[0].Key != "seq" || fmt.Sprint(got.Attrs[0].Value) != "7" {
		t.Errorf("attrs: %+v", got.Attrs)
	}
}

func TestFlightRingWraps(t *testing.T) {
	fs := vfs.NewMem(2)
	fr, err := OpenFlight(FlightConfig{FS: fs, Slots: 4, SlotSize: 256, FlushEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fr.Emit(Event{Name: fmt.Sprintf("e%d", i)})
	}
	// In-memory tail and durable image must agree: the 4 newest events.
	mem := fr.Events()
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFlight(fs, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 || len(mem) != 4 {
		t.Fatalf("disk %d / mem %d events, want 4", len(events), len(mem))
	}
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("e%d", 6+i)
		if events[i].Name != want || mem[i].Name != want {
			t.Errorf("slot %d: disk=%s mem=%s want=%s", i, events[i].Name, mem[i].Name, want)
		}
	}
}

func TestFlightDamagedSlotSkipped(t *testing.T) {
	mem := vfs.NewMem(3)
	fr, err := OpenFlight(FlightConfig{FS: mem, Slots: 8, SlotSize: 128, FlushEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fr.Emit(Event{Name: fmt.Sprintf("e%d", i)})
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	// Hard-fail the media under e2's slot (sequence 4: flight.start is 1,
	// e0 is 2, so e2 lives in slot index 3).
	if err := mem.Damage("flightrec", int64(flightHeaderLen+3*128), 32); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFlight(mem, "")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range events {
		names = append(names, e.Name)
	}
	want := "flight.start e0 e1 e3 e4"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("decoded %q, want %q (damaged slot skipped, rest intact)", got, want)
	}
}

func TestFlightCorruptSlotFailsCRC(t *testing.T) {
	fs := vfs.NewMem(4)
	fr, err := OpenFlight(FlightConfig{FS: fs, Slots: 4, SlotSize: 128, FlushEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	fr.Emit(Event{Name: "keep"})
	fr.Emit(Event{Name: "corrupt-me"})
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the third slot's payload: its CRC must fail and
	// only that slot disappear.
	f, err := fs.OpenRW("flightrec")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, int64(flightHeaderLen+2*128+20)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	events, err := ReadFlight(fs, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Name != "flight.start" || events[1].Name != "keep" {
		t.Errorf("decoded %+v, want flight.start + keep", events)
	}
}

func TestFlightPeriodicFlush(t *testing.T) {
	fs := vfs.NewMem(5)
	fr, err := OpenFlight(FlightConfig{FS: fs, FlushEvery: time.Hour}) // cadence never fires in-test
	if err != nil {
		t.Fatal(err)
	}
	fr.Emit(Event{Name: "buffered"})
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFlight(fs, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Name != "buffered" {
		t.Errorf("after explicit Flush: %+v", events)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightLongFieldsTruncated(t *testing.T) {
	fs := vfs.NewMem(6)
	// 384-byte slots: enough payload for the 255-cap name plus a truncated
	// (but non-empty) error; the attrs get squeezed out entirely.
	fr, err := OpenFlight(FlightConfig{FS: fs, Slots: 4, SlotSize: 384, FlushEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	fr.Emit(Event{
		Name:  strings.Repeat("n", 300),
		Err:   fmt.Errorf("%s", strings.Repeat("e", 300)),
		Attrs: []Attr{A(strings.Repeat("k", 40), strings.Repeat("v", 300)), A("tail", 1)},
	})
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFlight(fs, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("oversized event must still decode: %+v", events)
	}
	e := events[1]
	if len(e.Name) == 0 || len(e.Name) > 255 {
		t.Errorf("name length %d after truncation", len(e.Name))
	}
	if e.Err == nil {
		t.Error("err lost")
	}
}

func TestReadFlightMissingAndCorruptHeader(t *testing.T) {
	fs := vfs.NewMem(7)
	if _, err := ReadFlight(fs, ""); err == nil {
		t.Error("absent ring must be an error")
	}
	if err := vfs.WriteFile(fs, "flightrec", []byte("not a ring, definitely")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlight(fs, ""); err == nil {
		t.Error("bad magic must be an error")
	}
}

func TestFlightPanicFlush(t *testing.T) {
	fs := vfs.NewMem(8)
	fr, err := OpenFlight(FlightConfig{FS: fs, FlushEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PanicFlush must re-panic")
			}
		}()
		defer fr.PanicFlush()
		fr.Emit(Event{Name: "last-words"})
		panic("die")
	}()
	events, err := ReadFlight(fs, "")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range events {
		found = found || e.Name == "last-words"
	}
	if !found {
		t.Errorf("panic-time event not durable: %+v", events)
	}
	fr.Close()
}
