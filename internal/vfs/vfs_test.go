package vfs

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

// both runs a test against Mem and OS implementations.
func both(t *testing.T, fn func(t *testing.T, fs FS)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { fn(t, NewMem(1)) })
	t.Run("os", func(t *testing.T) {
		o, err := NewOS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, o)
	})
}

func TestCreateWriteRead(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		if err := WriteFile(fs, "a", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(fs, "a")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "hello" {
			t.Errorf("got %q", got)
		}
		size, err := fs.Stat("a")
		if err != nil || size != 5 {
			t.Errorf("Stat = %d, %v", size, err)
		}
	})
}

func TestOpenMissing(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
			t.Errorf("Open missing: %v", err)
		}
		if _, err := fs.Stat("nope"); !errors.Is(err, ErrNotExist) {
			t.Errorf("Stat missing: %v", err)
		}
		if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
			t.Errorf("Remove missing: %v", err)
		}
	})
}

func TestAppend(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		f, err := fs.Append("log")
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("one"))
		f.Sync()
		f.Close()
		f, err = fs.Append("log")
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("two"))
		f.Sync()
		f.Close()
		got, _ := ReadFile(fs, "log")
		if string(got) != "onetwo" {
			t.Errorf("got %q", got)
		}
	})
}

func TestRenameReplaces(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		WriteFile(fs, "old", []byte("v2"))
		WriteFile(fs, "target", []byte("v1"))
		if err := fs.Rename("old", "target"); err != nil {
			t.Fatal(err)
		}
		got, _ := ReadFile(fs, "target")
		if string(got) != "v2" {
			t.Errorf("got %q", got)
		}
		if Exists(fs, "old") {
			t.Error("old still exists")
		}
	})
}

func TestList(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		for _, n := range []string{"c", "a", "b"} {
			WriteFile(fs, n, nil)
		}
		names, err := fs.List()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
			t.Errorf("got %v", names)
		}
	})
}

func TestReadWriteAt(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		f, err := fs.Create("pages")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.WriteAt([]byte("BBBB"), 4); err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("AAAA"), 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if _, err := f.ReadAt(buf, 4); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if string(buf) != "BBBB" {
			t.Errorf("got %q", buf)
		}
	})
}

func TestTruncate(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		WriteFile(fs, "t", []byte("0123456789"))
		f, err := fs.OpenRW("t")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(4); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, _ := ReadFile(fs, "t")
		if string(got) != "0123" {
			t.Errorf("got %q", got)
		}
	})
}

func TestSeek(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		WriteFile(fs, "s", []byte("0123456789"))
		f, _ := fs.Open("s")
		defer f.Close()
		if pos, err := f.Seek(4, io.SeekStart); err != nil || pos != 4 {
			t.Fatalf("seek: %d %v", pos, err)
		}
		buf := make([]byte, 2)
		io.ReadFull(f, buf)
		if string(buf) != "45" {
			t.Errorf("got %q", buf)
		}
		if pos, _ := f.Seek(-2, io.SeekEnd); pos != 8 {
			t.Errorf("seek end: %d", pos)
		}
	})
}

func TestInvalidNames(t *testing.T) {
	both(t, func(t *testing.T, fs FS) {
		for _, name := range []string{"", "a/b", "..", ".", "x\x00y", `a\b`} {
			if _, err := fs.Create(name); err == nil {
				t.Errorf("Create(%q) succeeded", name)
			}
		}
	})
}

// --- Mem-specific crash semantics ---

func TestCrashDropsUnsynced(t *testing.T) {
	m := NewMem(1)
	f, _ := m.Create("f")
	f.Write([]byte("synced"))
	f.Sync()
	f.Write([]byte(" unsynced"))
	f.Close()
	m.Crash()
	got, err := ReadFile(m, "f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced" {
		t.Errorf("after crash: %q", got)
	}
}

func TestCrashPreservesSynced(t *testing.T) {
	m := NewMem(1)
	WriteFile(m, "f", []byte("durable"))
	m.Crash()
	got, err := ReadFile(m, "f")
	if err != nil || string(got) != "durable" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestCrashTornPersistsPrefix(t *testing.T) {
	// Over many seeds, a torn crash must always leave a prefix (possibly
	// empty, possibly complete) of the pending write, never other bytes.
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	sawPartial := false
	for seed := int64(0); seed < 50; seed++ {
		m := NewMem(seed)
		f, _ := m.Create("f")
		f.Write([]byte("base"))
		f.Sync()
		f.Write(payload)
		f.Close()
		m.CrashTorn(512)
		got, err := ReadFile(m, "f")
		if errors.Is(err, ErrDamaged) {
			sawPartial = true
			continue // damaged tail page: detectable, which is the point
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < 4 || string(got[:4]) != "base" {
			t.Fatalf("seed %d: synced prefix lost: %q", seed, got[:min(8, len(got))])
		}
		rest := got[4:]
		if len(rest) > len(payload) {
			t.Fatalf("seed %d: grew beyond write", seed)
		}
		for i, b := range rest {
			if b != payload[i] {
				t.Fatalf("seed %d: byte %d = %#x, want %#x", seed, i, b, payload[i])
			}
		}
		if len(rest) > 0 && len(rest) < len(payload) {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no torn crash over 50 seeds produced a partial write; model broken")
	}
}

func TestDamagedReadFails(t *testing.T) {
	m := NewMem(1)
	WriteFile(m, "f", []byte("0123456789"))
	m.Damage("f", 5, 2)
	f, _ := m.Open("f")
	defer f.Close()
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrDamaged) {
		t.Errorf("expected ErrDamaged, got %v", err)
	}
	// Reading before the damage is fine.
	if _, err := f.ReadAt(buf[:5], 0); err != nil && err != io.EOF {
		t.Errorf("read before damage: %v", err)
	}
}

func TestFailSyncInjection(t *testing.T) {
	m := NewMem(1)
	boom := errors.New("boom")
	m.FailSync = func(name string) error { return boom }
	f, _ := m.Create("f")
	f.Write([]byte("x"))
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Errorf("got %v", err)
	}
	m.FailSync = nil
	m.Crash()
	got, _ := ReadFile(m, "f")
	if len(got) != 0 {
		t.Errorf("failed sync persisted data: %q", got)
	}
}

func TestTotalBytes(t *testing.T) {
	m := NewMem(1)
	WriteFile(m, "a", make([]byte, 100))
	WriteFile(m, "b", make([]byte, 23))
	if got := m.TotalBytes(); got != 123 {
		t.Errorf("TotalBytes = %d", got)
	}
}

// Property: for any sequence of synced writes, content survives a crash.
func TestQuickSyncedSurvivesCrash(t *testing.T) {
	f := func(chunks [][]byte, seed int64) bool {
		m := NewMem(seed)
		h, err := m.Create("f")
		if err != nil {
			return false
		}
		var want []byte
		for _, c := range chunks {
			h.Write(c)
			want = append(want, c...)
		}
		h.Sync()
		h.Write([]byte("garbage that must vanish"))
		h.Close()
		m.Crash()
		got, err := ReadFile(m, "f")
		if err != nil {
			return false
		}
		return string(got) == string(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentHandles(t *testing.T) {
	m := NewMem(1)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			name := fmt.Sprintf("f%d", g)
			for i := 0; i < 50; i++ {
				if err := WriteFile(m, name, []byte{byte(i)}); err != nil {
					done <- err
					return
				}
				if _, err := ReadFile(m, name); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
