package multistore

import (
	"fmt"
	"sync"

	"smalldb/internal/core"
	"smalldb/internal/vfs"
)

// ShardsConfig configures a consistent-hash sharded namespace.
type ShardsConfig struct {
	// FS is the directory holding the shared log and per-group
	// checkpoints.
	FS vfs.FS
	// Groups names every group that may own keys; each becomes a Set
	// partition. The Set's partitions are fixed at open, but the routing
	// ring may start smaller (see Routed) and grow by AddGroup — the
	// capacity-expansion flow: provision the partition first, then move
	// its key range onto it.
	Groups []string
	// Routed optionally restricts the initial ring to a subset of Groups;
	// empty means all of Groups are routed from the start.
	Routed []string
	// NewRoot constructs an empty per-group root.
	NewRoot func() any
	// VNodes is the virtual-node count per group (0 = DefaultVNodes).
	VNodes int
	// SegmentBytes passes through to the Set.
	SegmentBytes int64
}

// Shards routes a flat key space across replica-group partitions by
// consistent hashing. Routing mutations (AddGroup, RemoveGroup) are safe
// against concurrent Apply/View traffic: a rebalance changes only which
// partition future writes land in, never the data already written.
type Shards struct {
	set *Set

	mu   sync.RWMutex
	ring *Ring
}

// OpenShards opens (or recovers) the sharded namespace.
func OpenShards(cfg ShardsConfig) (*Shards, error) {
	if len(cfg.Groups) == 0 {
		return nil, ErrNoGroups
	}
	if cfg.NewRoot == nil {
		return nil, fmt.Errorf("multistore: ShardsConfig.NewRoot is required")
	}
	parts := make(map[string]func() any, len(cfg.Groups))
	for _, g := range cfg.Groups {
		parts[g] = cfg.NewRoot
	}
	if len(parts) != len(cfg.Groups) {
		return nil, fmt.Errorf("multistore: duplicate group in %v", cfg.Groups)
	}
	routed := cfg.Routed
	if len(routed) == 0 {
		routed = cfg.Groups
	}
	for _, g := range routed {
		if _, ok := parts[g]; !ok {
			return nil, fmt.Errorf("%w: routed group %q not in Groups", ErrUnknownGroup, g)
		}
	}
	ring, err := NewRing(cfg.VNodes, routed...)
	if err != nil {
		return nil, err
	}
	set, err := Open(Config{FS: cfg.FS, Partitions: parts, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		return nil, err
	}
	return &Shards{set: set, ring: ring}, nil
}

// Owner reports which group currently owns key.
func (s *Shards) Owner(key string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Owner(key)
}

// Apply routes one update to key's owning group and commits it there.
// It reports the owner it chose, so callers recording placement (or
// forwarding to that group's primary) know where the key landed.
func (s *Shards) Apply(key string, u core.Update) (owner string, err error) {
	owner = s.Owner(key)
	return owner, s.set.Apply(owner, u)
}

// View runs an enquiry against key's owning group.
func (s *Shards) View(key string, fn func(root any) error) error {
	return s.set.View(s.Owner(key), fn)
}

// ViewGroup runs an enquiry against a named group.
func (s *Shards) ViewGroup(group string, fn func(root any) error) error {
	return s.set.View(group, fn)
}

// AddGroup moves ~1/N of the key space onto an already-provisioned
// partition (it must be one of the config's Groups).
func (s *Shards) AddGroup(group string) error {
	if _, err := s.set.part(group); err != nil {
		return fmt.Errorf("%w: %q has no partition", ErrUnknownGroup, group)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Add(group)
}

// RemoveGroup routes a group's key range back to its ring successors
// (say, ahead of decommissioning the group).
func (s *Shards) RemoveGroup(group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Remove(group)
}

// Routed lists the groups currently receiving traffic, sorted.
func (s *Shards) Routed() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Groups()
}

// Checkpoint checkpoints one group's partition.
func (s *Shards) Checkpoint(group string) error { return s.set.Checkpoint(group) }

// Set exposes the underlying partition set (segment stats, per-group
// checkpoints).
func (s *Shards) Set() *Set { return s.set }

// Close closes the underlying set.
func (s *Shards) Close() error { return s.set.Close() }
