package pickle

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// Embedded and anonymous struct fields.
type base struct {
	ID int
}

type derived struct {
	base // embedded: exported promoted field must round-trip
	Name string
}

func TestEmbeddedStructs(t *testing.T) {
	// The embedded field "base" is an unexported *field name* in Go
	// reflect terms (PkgPath set for lowercase type), so it is skipped;
	// an exported embedded type round-trips.
	type Base struct{ ID int }
	type Derived struct {
		Base
		Name string
	}
	in := Derived{Base: Base{ID: 7}, Name: "x"}
	var out Derived
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Name != "x" {
		t.Errorf("got %+v", out)
	}

	// Lowercase embedded type: skipped without error.
	in2 := derived{base: base{ID: 9}, Name: "y"}
	data2, err := Marshal(in2)
	if err != nil {
		t.Fatal(err)
	}
	var out2 derived
	if err := Unmarshal(data2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Name != "y" || out2.ID != 0 {
		t.Errorf("got %+v", out2)
	}
}

func TestDeepNesting(t *testing.T) {
	type leaf struct{ V int }
	in := map[string][]map[int][]*leaf{
		"a": {
			{1: {{V: 10}, nil, {V: 11}}},
			{2: {}},
		},
		"b": nil,
	}
	var out map[string][]map[int][]*leaf
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("deep structure mangled:\n in: %#v\nout: %#v", in, out)
	}
}

func TestDifferentNamedTypesSameShape(t *testing.T) {
	// Struct matching is by field names, so renaming the Go type is a
	// compatible schema change.
	type V1 struct{ A, B string }
	type V2Renamed struct{ A, B string }
	data, err := Marshal(V1{A: "a", B: "b"})
	if err != nil {
		t.Fatal(err)
	}
	var out V2Renamed
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != "a" || out.B != "b" {
		t.Errorf("got %+v", out)
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("write exploded")
	}
	w.after -= len(p)
	return len(p), nil
}

func TestEncoderWriteErrors(t *testing.T) {
	// A write error at any point must surface and stick.
	for after := 0; after < 40; after += 3 {
		w := &failingWriter{after: after}
		enc := NewEncoder(w)
		err := enc.Encode(outer{Name: "x", Tags: []string{"a", "b"}, Attrs: map[string]string{"k": "v"}})
		if err == nil {
			continue // wrote fully within budget
		}
		// Sticky: the next Encode fails immediately.
		if err2 := enc.Encode(1); err2 == nil {
			t.Fatalf("after=%d: error not sticky", after)
		}
	}
}

func TestInterfaceInsideMapAndSlice(t *testing.T) {
	in := map[string]shape{
		"r": rect{W: 3, H: 4},
		"c": &circle{R: 2},
	}
	var out map[string]shape
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["r"].Area() != 12 || out["c"].Area() != 12 {
		t.Errorf("areas: %v %v", out["r"].Area(), out["c"].Area())
	}
}

func TestSharedPointerAcrossInterfaceAndDirect(t *testing.T) {
	// The same *circle reachable both directly and through an interface
	// keeps its identity.
	c := &circle{R: 1}
	type holder struct {
		Direct *circle
		Iface  shape
	}
	pickleOnce := func() (*holder, error) {
		data, err := Marshal(&holder{Direct: c, Iface: c})
		if err != nil {
			return nil, err
		}
		var out holder
		if err := Unmarshal(data, &out); err != nil {
			return nil, err
		}
		return &out, nil
	}
	out, err := pickleOnce()
	if err != nil {
		t.Fatal(err)
	}
	if out.Iface.(*circle) != out.Direct {
		t.Error("pointer identity across interface boundary lost")
	}
}

// Decoding random bytes must never panic and must terminate.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	targets := []func() any{
		func() any { return new(int) },
		func() any { return new(string) },
		func() any { return new([]string) },
		func() any { return new(map[string]int) },
		func() any { return new(outer) },
		func() any { return new(*listNode) },
		func() any { return new(any) },
	}
	for i := 0; i < 3000; i++ {
		n := rng.Intn(60)
		buf := make([]byte, n+1)
		buf[0] = magic // let it past the header so tag parsing is hit
		rng.Read(buf[1:])
		tgt := targets[i%len(targets)]()
		_ = Unmarshal(buf, tgt) // must not panic
	}
}

// Mutating valid pickles must never panic the generic decoder either.
func TestGenericDecodeFuzzedStream(t *testing.T) {
	good, err := Marshal(outer{
		Name:     "g",
		Inner:    inner{Label: "l"},
		InnerPtr: &inner{N: 2},
		Tags:     []string{"t"},
		Attrs:    map[string]string{"k": "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), good...)
		for j := 0; j < 1+rng.Intn(3); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		dec := NewDecoder(bytes.NewReader(mut))
		v, err := dec.DecodeAny()
		if err == nil {
			_ = Format(v) // and formatting must not panic
		}
	}
}

func TestBinaryMarshalerTypes(t *testing.T) {
	// time.Time implements BinaryMarshaler/Unmarshaler: it must
	// round-trip exactly, including the monotonic-stripped wall clock
	// and location.
	type event struct {
		Name string
		At   time.Time
		Prev *time.Time
	}
	at := time.Date(1987, time.November, 8, 12, 30, 45, 123456789, time.UTC)
	prev := at.Add(-24 * time.Hour)
	in := event{Name: "sosp", At: at, Prev: &prev}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out event
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.At.Equal(at) || out.Prev == nil || !out.Prev.Equal(prev) {
		t.Errorf("times mangled: %v %v", out.At, out.Prev)
	}
	if out.Name != "sosp" {
		t.Errorf("Name = %q", out.Name)
	}

	// Maps keyed or valued by time.Time work too.
	m := map[string]time.Time{"t": at}
	var mOut map[string]time.Time
	data2, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(data2, &mOut); err != nil {
		t.Fatal(err)
	}
	if !mOut["t"].Equal(at) {
		t.Errorf("map time mangled: %v", mOut["t"])
	}
}

func TestRegisteredNames(t *testing.T) {
	names := RegisteredNames()
	found := false
	for _, n := range names {
		if n == "smalldb/internal/pickle.rect" {
			found = true
		}
	}
	if !found {
		t.Errorf("rect not in registry: %v", names)
	}
}

func TestMultipleValuesShareTypeTable(t *testing.T) {
	// The second encoding of the same struct type must be smaller than
	// the first (no repeated type definition).
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.Encode(inner{Label: "aaaa", N: 1})
	first := buf.Len()
	enc.Encode(inner{Label: "aaaa", N: 2})
	second := buf.Len() - first
	if second >= first {
		t.Errorf("type table not shared: first=%d second=%d", first, second)
	}
}

// Property: pointer graphs with random sharing round-trip isomorphically.
func TestQuickSharedGraph(t *testing.T) {
	type node struct {
		V    int
		Next *node
	}
	// quick can't generate cyclic graphs; build them from a random spec.
	f := func(edges []uint8, vals []int8) bool {
		n := len(vals)
		if n == 0 || n > 20 {
			return true
		}
		nodes := make([]*node, n)
		for i := range nodes {
			nodes[i] = &node{V: int(vals[i])}
		}
		for i, e := range edges {
			if i >= n {
				break
			}
			nodes[i].Next = nodes[int(e)%n] // arbitrary, possibly cyclic
		}
		data, err := Marshal(nodes)
		if err != nil {
			return false
		}
		var out []*node
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		if len(out) != n {
			return false
		}
		// Isomorphism: same values, and identical sharing pattern.
		index := map[*node]int{}
		for i, p := range nodes {
			index[p] = i
		}
		outIndex := map[*node]int{}
		for i, p := range out {
			if p.V != nodes[i].V {
				return false
			}
			outIndex[p] = i
		}
		for i := range nodes {
			if nodes[i].Next == nil {
				if out[i].Next != nil {
					return false
				}
				continue
			}
			wantTarget, ok := index[nodes[i].Next]
			if !ok {
				continue
			}
			if out[i].Next != out[wantTarget] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
