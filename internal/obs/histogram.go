package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// numBuckets covers every non-negative int64: bucket 0 holds the value 0,
// bucket i (i ≥ 1) holds values in [2^(i-1), 2^i).
const numBuckets = 65

// A Histogram accumulates a distribution of non-negative int64 values
// (latencies in nanoseconds, sizes in bytes) in logarithmic buckets: bucket
// boundaries are powers of two, so an observation costs a few atomic adds
// and a snapshot's percentile estimates carry at most one octave of
// quantization error, reduced by linear interpolation within the bucket.
// The maximum is tracked exactly. The zero value is ready to use; a nil
// *Histogram discards observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds reports the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1) << i
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Snapshot is a point-in-time summary of a histogram. Values are in the
// unit that was observed (nanoseconds for durations, bytes for sizes).
type Snapshot struct {
	Count uint64
	Sum   int64
	Mean  int64
	Max   int64
	P50   int64
	P90   int64
	P99   int64

	buckets [numBuckets]uint64
}

// Snapshot captures the current distribution. Concurrent observations may
// be partially included; each observation is internally consistent enough
// for monitoring (the count and bucket totals can transiently disagree by
// in-flight observations). A nil histogram yields a zero snapshot.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range s.buckets {
		s.buckets[i] = h.buckets[i].Load()
		s.Count += s.buckets[i]
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if s.Count > 0 {
		s.Mean = s.Sum / int64(s.Count)
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the captured
// distribution: find the bucket holding the target rank and interpolate
// linearly within its bounds. The estimate never exceeds the exact maximum.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1) // 0-based fractional rank
	var seen uint64
	for i, n := range s.buckets {
		if n == 0 {
			continue
		}
		if rank < float64(seen+n) {
			lo, hi := bucketBounds(i)
			if hi > s.Max && s.Max >= lo {
				hi = s.Max + 1 // the bucket's population cannot exceed the exact max
			}
			frac := (rank - float64(seen)) / float64(n)
			est := float64(lo) + frac*float64(hi-lo)
			if est > float64(s.Max) {
				return s.Max
			}
			return int64(est)
		}
		seen += n
	}
	return s.Max
}

// String renders the snapshot as a compact JSON object, so a *Histogram
// (via its Snapshot) can be published as an expvar.Var.
func (s Snapshot) String() string {
	return fmt.Sprintf(`{"count":%d,"sum":%d,"mean":%d,"p50":%d,"p90":%d,"p99":%d,"max":%d}`,
		s.Count, s.Sum, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// String satisfies expvar.Var: the histogram renders as its snapshot.
func (h *Histogram) String() string { return h.Snapshot().String() }

// Buckets calls fn for each non-empty bucket in ascending value order with
// the bucket's value range and count; the /stats page renders these as an
// ASCII distribution.
func (s Snapshot) Buckets(fn func(lo, hi int64, n uint64)) {
	for i, n := range s.buckets {
		if n > 0 {
			lo, hi := bucketBounds(i)
			fn(lo, hi, n)
		}
	}
}

// DurationString formats the snapshot's summary fields as durations, for
// human-readable output of latency histograms.
func (s Snapshot) DurationString() string {
	return fmt.Sprintf("count=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count,
		time.Duration(s.Mean).Round(time.Microsecond),
		time.Duration(s.P50).Round(time.Microsecond),
		time.Duration(s.P90).Round(time.Microsecond),
		time.Duration(s.P99).Round(time.Microsecond),
		time.Duration(s.Max).Round(time.Microsecond))
}

// SizeString formats the snapshot's summary fields as byte sizes.
func (s Snapshot) SizeString() string {
	return fmt.Sprintf("count=%d mean=%s p50=%s p90=%s p99=%s max=%s total=%s",
		s.Count, sizeStr(s.Mean), sizeStr(s.P50), sizeStr(s.P90), sizeStr(s.P99), sizeStr(s.Max), sizeStr(s.Sum))
}

func sizeStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Bar renders an ASCII distribution of the snapshot, one line per
// non-empty bucket, scaled to width characters.
func (s Snapshot) Bar(width int, format func(int64) string) string {
	if width <= 0 {
		width = 40
	}
	if format == nil {
		format = func(v int64) string { return fmt.Sprintf("%d", v) }
	}
	var peak uint64
	s.Buckets(func(_, _ int64, n uint64) {
		if n > peak {
			peak = n
		}
	})
	if peak == 0 {
		return "  (empty)\n"
	}
	var b strings.Builder
	s.Buckets(func(lo, hi int64, n uint64) {
		w := int(float64(width) * float64(n) / float64(peak))
		if w == 0 {
			w = 1
		}
		fmt.Fprintf(&b, "  [%12s, %12s)  %-*s %d\n", format(lo), format(hi), width, strings.Repeat("#", w), n)
	})
	return b.String()
}
