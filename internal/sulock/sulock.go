// Package sulock implements the paper's three-mode lock with exactly its
// compatibility matrix (§3):
//
//	           shared     update     exclusive
//	shared    compatible compatible  conflict
//	update    compatible  conflict   conflict
//	exclusive  conflict   conflict   conflict
//
// "An enquiry operation is performed with a shared lock. An update
// operation first acquires an update lock (thereby excluding other update
// operations but permitting enquiry operations). After the update operation
// has verified its pre-conditions it assembles its log record and commits
// it to disk. Finally the update operation converts its lock to an
// exclusive lock (thus excluding enquiry operations) and modifies the
// virtual memory structures. An update lock is held while writing a
// checkpoint. Note that these rules never exclude enquiry operations during
// disk transfers, only during virtual memory operations."
//
// The one policy choice the matrix leaves open is what happens to new
// shared requests while an upgrade to exclusive is waiting for readers to
// drain: this implementation blocks them, so the upgrade cannot be starved
// by a stream of enquiries. The exclusive section is as short as an
// in-memory mutation, so the enquiry delay is bounded and tiny.
package sulock

import (
	"sync"
	"time"

	"smalldb/internal/obs"
)

// Lock is a shared/update/exclusive lock. The zero value is ready to use.
type Lock struct {
	mu   sync.Mutex
	cond *sync.Cond

	readers   int  // holders of shared
	updater   bool // the (single) holder of update or exclusive
	exclusive bool // updater has upgraded
	upgrading bool // updater is waiting for readers to drain
	urgent    int  // UpdateUrgent waiters; plain Update defers to them

	ins *instrumentation // nil when uninstrumented
}

// instrumentation holds the optional contention metrics. The uncontended
// fast path pays only a nil check; wait time is measured only when a
// request actually blocks.
type instrumentation struct {
	sharedWait, updateWait, upgradeWait           *obs.Histogram
	sharedContended, updateContended, upContended *obs.Counter
	tracer                                        obs.Tracer
}

// InstrumentOption tunes Instrument.
type InstrumentOption func(*instrumentOptions)

type instrumentOptions struct {
	skipShared bool
}

// SkipShared omits the shared-mode series (*_lock_shared_wait_ns,
// *_lock_shared_contended) from the registry. A store whose enquiries
// bypass the lock entirely — lock-free versioned reads — never acquires
// shared mode, and exporting permanently-zero series would misleadingly
// suggest reads still contend here. Shared acquisitions on such a lock
// are still correct; they just go unrecorded.
func SkipShared() InstrumentOption {
	return func(o *instrumentOptions) { o.skipShared = true }
}

// Instrument wires the lock's contention metrics into reg under
// prefix+"_lock_*" names (wait-time histograms and contended-acquisition
// counters) and, if tr is non-nil, emits a "lock.wait" event for every
// acquisition that had to block. Call before the lock is in use.
func (l *Lock) Instrument(reg *obs.Registry, prefix string, tr obs.Tracer, opts ...InstrumentOption) {
	var o instrumentOptions
	for _, opt := range opts {
		opt(&o)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ins := &instrumentation{
		updateWait:      reg.Histogram(prefix + "_lock_update_wait_ns"),
		upgradeWait:     reg.Histogram(prefix + "_lock_upgrade_wait_ns"),
		updateContended: reg.Counter(prefix + "_lock_update_contended"),
		upContended:     reg.Counter(prefix + "_lock_upgrade_contended"),
		tracer:          tr,
	}
	if !o.skipShared {
		// The histogram/counter handles stay nil when skipped; the obs
		// types are nil-safe, so record() needs no branch.
		ins.sharedWait = reg.Histogram(prefix + "_lock_shared_wait_ns")
		ins.sharedContended = reg.Counter(prefix + "_lock_shared_contended")
	}
	l.ins = ins
}

// record notes one contended acquisition of dur in mode. Called without
// l.mu held.
func (ins *instrumentation) record(mode string, h *obs.Histogram, c *obs.Counter, dur time.Duration) {
	c.Inc()
	h.ObserveDuration(dur)
	obs.Emit(ins.tracer, obs.Event{Name: "lock.wait", Dur: dur, Attrs: []obs.Attr{obs.A("mode", mode)}})
}

func (l *Lock) init() {
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
	}
}

// Shared acquires the lock in shared mode; enquiries run under it. It
// blocks while an exclusive holder exists or an upgrade is pending.
func (l *Lock) Shared() {
	l.mu.Lock()
	l.init()
	if l.exclusive || l.upgrading {
		ins := l.ins
		start := time.Now()
		for l.exclusive || l.upgrading {
			l.cond.Wait()
		}
		if ins != nil {
			l.readers++
			l.mu.Unlock()
			ins.record("shared", ins.sharedWait, ins.sharedContended, time.Since(start))
			return
		}
	}
	l.readers++
	l.mu.Unlock()
}

// SharedUnlock releases one shared hold.
func (l *Lock) SharedUnlock() {
	l.mu.Lock()
	l.init()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("sulock: SharedUnlock without Shared")
	}
	l.readers--
	if l.readers == 0 {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// Update acquires the lock in update mode: it excludes other updaters but
// admits shared holders. Updates run under it.
func (l *Lock) Update() { l.UpdateWaited() }

// UpdateWaited is Update, reporting how long the caller blocked — zero for
// an uncontended acquisition, measured only when a wait actually happened.
// Traced updates use it to record a lock-wait span without a second clock
// read on the fast path.
func (l *Lock) UpdateWaited() time.Duration {
	l.mu.Lock()
	l.init()
	if l.updater || l.urgent > 0 {
		ins := l.ins
		start := time.Now()
		for l.updater || l.urgent > 0 {
			l.cond.Wait()
		}
		l.updater = true
		l.mu.Unlock()
		dur := time.Since(start)
		if ins != nil {
			ins.record("update", ins.updateWait, ins.updateContended, dur)
		}
		return dur
	}
	l.updater = true
	l.mu.Unlock()
	return 0
}

// UpdateUrgent acquires update mode ahead of plain Update callers: while an
// urgent waiter exists, Update calls queue instead of barging onto a freshly
// released lock. Checkpoints acquire this way — a busy store commits updates
// back-to-back, holding update mode for nearly all of wall time, and a
// checkpoint that queued like any other updater could wait unboundedly for
// the one scheduling race it needs to win. Urgent waiters still wait for the
// current holder; they only skip the line, never preempt.
func (l *Lock) UpdateUrgent() {
	l.mu.Lock()
	l.init()
	if l.updater {
		ins := l.ins
		start := time.Now()
		l.urgent++
		for l.updater {
			l.cond.Wait()
		}
		l.urgent--
		l.updater = true
		l.mu.Unlock()
		if ins != nil {
			ins.record("update", ins.updateWait, ins.updateContended, time.Since(start))
		}
		return
	}
	l.updater = true
	l.mu.Unlock()
}

// UpdateUnlock releases update mode without having upgraded (a checkpoint,
// or an update whose preconditions failed).
func (l *Lock) UpdateUnlock() {
	l.mu.Lock()
	l.init()
	if !l.updater || l.exclusive {
		l.mu.Unlock()
		panic("sulock: UpdateUnlock without plain Update")
	}
	l.updater = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Upgrade converts the caller's update hold to exclusive, blocking until
// all shared holders release. This is the paper's lock conversion performed
// after the log entry is committed and before the virtual memory structures
// are modified.
func (l *Lock) Upgrade() { l.UpgradeWaited() }

// UpgradeWaited is Upgrade, reporting how long the caller blocked waiting
// for readers to drain (zero when none were present).
func (l *Lock) UpgradeWaited() time.Duration {
	l.mu.Lock()
	l.init()
	if !l.updater || l.exclusive {
		l.mu.Unlock()
		panic("sulock: Upgrade without Update")
	}
	l.upgrading = true
	if l.readers > 0 {
		ins := l.ins
		start := time.Now()
		for l.readers > 0 {
			l.cond.Wait()
		}
		l.upgrading = false
		l.exclusive = true
		l.mu.Unlock()
		dur := time.Since(start)
		if ins != nil {
			ins.record("upgrade", ins.upgradeWait, ins.upContended, dur)
		}
		return dur
	}
	l.upgrading = false
	l.exclusive = true
	l.mu.Unlock()
	return 0
}

// ExclusiveUnlock releases an exclusive hold (acquired by Upgrade or
// Exclusive), freeing both update and exclusive modes.
func (l *Lock) ExclusiveUnlock() {
	l.mu.Lock()
	l.init()
	if !l.exclusive {
		l.mu.Unlock()
		panic("sulock: ExclusiveUnlock without exclusive")
	}
	l.exclusive = false
	l.updater = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Exclusive acquires the lock directly in exclusive mode. The paper's
// design never needs it; it exists for the E8 ablation, which holds
// exclusive for a whole update (disk write included) to show what the
// three-mode matrix buys.
func (l *Lock) Exclusive() {
	l.Update()
	l.Upgrade()
}

// Holders reports the current holder counts (shared, update, exclusive);
// used by tests and instrumentation.
func (l *Lock) Holders() (shared int, update, exclusive bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readers, l.updater, l.exclusive
}
