package replica

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"smalldb/internal/nameserver"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

// cluster wires n nodes together over in-memory pipes.
type cluster struct {
	nodes   []*Node
	fss     []*vfs.Mem
	servers []*rpc.Server
	clients map[string]map[string]*rpc.Client // from -> to
}

func makeCluster(t *testing.T, names ...string) *cluster {
	t.Helper()
	c := &cluster{clients: make(map[string]map[string]*rpc.Client)}
	for i, name := range names {
		fs := vfs.NewMem(int64(i + 1))
		n, err := Open(Config{Name: name, FS: fs, HistoryCap: 100})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		if err := srv.Register("Replica", NewService(n)); err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
		c.fss = append(c.fss, fs)
		c.servers = append(c.servers, srv)
	}
	for i, from := range names {
		c.clients[from] = make(map[string]*rpc.Client)
		for j, to := range names {
			if i == j {
				continue
			}
			cc, sc := net.Pipe()
			go c.servers[j].ServeConn(sc)
			client := rpc.NewClient(cc)
			c.nodes[i].AddPeer(to, client)
			c.clients[from][to] = client
		}
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Close()
		}
		for _, s := range c.servers {
			s.Close()
		}
	})
	return c
}

func TestPropagation(t *testing.T) {
	c := makeCluster(t, "alpha", "beta", "gamma")
	if err := c.nodes[0].Set("net/hosts/a", "1"); err != nil {
		t.Fatal(err)
	}
	for i, n := range c.nodes {
		v, err := n.Lookup("net/hosts/a")
		if err != nil || v != "1" {
			t.Errorf("node %d: %q, %v", i, v, err)
		}
	}
}

func TestMultiMasterConvergence(t *testing.T) {
	c := makeCluster(t, "a", "b", "c")
	// Each node updates different names concurrently-ish.
	for i := 0; i < 10; i++ {
		for j, n := range c.nodes {
			if err := n.Set(fmt.Sprintf("from%d/k%d", j, i), fmt.Sprintf("v%d-%d", j, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, n := range c.nodes {
		for j := 0; j < 3; j++ {
			for k := 0; k < 10; k++ {
				want := fmt.Sprintf("v%d-%d", j, k)
				if v, err := n.Lookup(fmt.Sprintf("from%d/k%d", j, k)); err != nil || v != want {
					t.Fatalf("node %d missing from%d/k%d: %q %v", i, j, k, v, err)
				}
			}
		}
	}
	// Vectors converge.
	v0, _ := c.nodes[0].Vector()
	for i := 1; i < 3; i++ {
		vi, _ := c.nodes[i].Vector()
		for k, v := range v0 {
			if vi[k] != v {
				t.Errorf("vector mismatch at node %d: %v vs %v", i, vi, v0)
			}
		}
	}
}

func TestDuplicateDeliveryIgnored(t *testing.T) {
	c := makeCluster(t, "a", "b")
	c.nodes[0].Set("x", "1")
	// Push the same entry again by hand.
	vec, _ := c.nodes[1].Vector()
	if vec["a"] != 1 {
		t.Fatalf("vector: %v", vec)
	}
	parts, _ := nameserver.SplitPath("x")
	entry := Entry{Origin: "a", Seq: 1, Inner: &nameserver.SetValue{Path: parts, Value: "1"}}
	applied, err := c.nodes[1].applyEntries([]Entry{entry})
	if err != nil || applied != 0 {
		t.Errorf("duplicate applied=%d err=%v", applied, err)
	}
}

func TestAntiEntropyCatchUp(t *testing.T) {
	c := makeCluster(t, "a", "b")
	// Sever propagation: apply directly to a's store, not via Push.
	na, nb := c.nodes[0], c.nodes[1]
	for i := 0; i < 5; i++ {
		parts, _ := nameserver.SplitPath(fmt.Sprintf("k%d", i))
		var seq uint64
		na.store.View(func(root any) error {
			seq = root.(*Root).Vector["a"] + 1
			return nil
		})
		if err := na.store.Apply(&Replicated{Origin: "a", Seq: seq, Inner: &nameserver.SetValue{Path: parts, Value: "v"}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nb.Lookup("k0"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Fatal("propagation not actually severed")
	}
	// One anti-entropy round pulls everything over.
	if err := nb.SyncWith(c.clients["b"]["a"]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if v, err := nb.Lookup(fmt.Sprintf("k%d", i)); err != nil || v != "v" {
			t.Errorf("k%d: %q %v", i, v, err)
		}
	}
}

func TestAntiEntropyTimer(t *testing.T) {
	c := makeCluster(t, "a", "b")
	na, nb := c.nodes[0], c.nodes[1]
	// Direct store apply (no push).
	parts, _ := nameserver.SplitPath("timer/key")
	na.store.Apply(&Replicated{Origin: "a", Seq: 1, Inner: &nameserver.SetValue{Path: parts, Value: "v"}})
	nb.AntiEntropyEvery(10 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, err := nb.Lookup("timer/key"); err == nil && v == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("anti-entropy never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHistoryTrimForcesFullSync(t *testing.T) {
	// Node a's history cap is tiny; node b falls far behind and must get
	// a full snapshot.
	fsA := vfs.NewMem(1)
	na, err := Open(Config{Name: "a", FS: fsA, HistoryCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	srvA := rpc.NewServer()
	srvA.Register("Replica", NewService(na))
	defer srvA.Close()

	fsB := vfs.NewMem(2)
	nb, err := Open(Config{Name: "b", FS: fsB, HistoryCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()

	for i := 0; i < 20; i++ {
		parts, _ := nameserver.SplitPath(fmt.Sprintf("k%d", i))
		na.store.Apply(&Replicated{Origin: "a", Seq: uint64(i + 1), Inner: &nameserver.SetValue{Path: parts, Value: "v"}})
	}

	cc, sc := net.Pipe()
	go srvA.ServeConn(sc)
	client := rpc.NewClient(cc)
	defer client.Close()

	if err := nb.SyncWith(client); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if v, err := nb.Lookup(fmt.Sprintf("k%d", i)); err != nil || v != "v" {
			t.Fatalf("k%d after full sync: %q %v", i, v, err)
		}
	}
	vec, _ := nb.Vector()
	if vec["a"] != 20 {
		t.Errorf("vector after full sync: %v", vec)
	}
}

func TestHardErrorRestore(t *testing.T) {
	// The §4 scenario: node b's disk dies; rebuild from node a, losing
	// only what never propagated.
	c := makeCluster(t, "a", "b")
	na := c.nodes[0]
	for i := 0; i < 10; i++ {
		if err := na.Set(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// b's disk is wiped: simulate with a brand-new node directory.
	freshFS := vfs.NewMem(99)
	nb2, err := Open(Config{Name: "b", FS: freshFS, HistoryCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer nb2.Close()

	cc, sc := net.Pipe()
	go c.servers[0].ServeConn(sc)
	client := rpc.NewClient(cc)
	defer client.Close()
	if err := nb2.RestoreFromPeer(client); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if v, err := nb2.Lookup(fmt.Sprintf("k%d", i)); err != nil || v != "v" {
			t.Fatalf("k%d after restore: %q %v", i, v, err)
		}
	}
	// The restore is durable: crash and reopen.
	nb2.Close()
	freshFS.Crash()
	nb3, err := Open(Config{Name: "b", FS: freshFS, HistoryCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer nb3.Close()
	if v, err := nb3.Lookup("k5"); err != nil || v != "v" {
		t.Errorf("restore not durable: %q %v", v, err)
	}
}

func TestReplicaDurability(t *testing.T) {
	c := makeCluster(t, "a", "b")
	c.nodes[0].Set("persist/me", "1")
	// Crash and reopen node b from its own disk.
	name := c.nodes[1].Name()
	c.nodes[1].Close()
	c.fss[1].Crash()
	nb, err := Open(Config{Name: name, FS: c.fss[1], HistoryCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()
	if v, err := nb.Lookup("persist/me"); err != nil || v != "1" {
		t.Errorf("replicated update not durable: %q %v", v, err)
	}
	vec, _ := nb.Vector()
	if vec["a"] != 1 {
		t.Errorf("vector not durable: %v", vec)
	}
}

func TestSequenceGapDetected(t *testing.T) {
	c := makeCluster(t, "a", "b")
	nb := c.nodes[1]
	parts, _ := nameserver.SplitPath("gap")
	err := nb.store.Apply(&Replicated{Origin: "x", Seq: 5, Inner: &nameserver.SetValue{Path: parts, Value: "v"}})
	if !errors.Is(err, ErrSequenceGap) {
		t.Errorf("got %v", err)
	}
}

func TestConflictingNamesLastWriterWins(t *testing.T) {
	c := makeCluster(t, "a", "b")
	// Both write the same name. Lamport last-writer-wins must make both
	// nodes agree on one value once both updates have reached both.
	c.nodes[0].Set("conflict", "from-a")
	c.nodes[1].Set("conflict", "from-b")
	c.nodes[0].SyncWith(c.clients["a"]["b"])
	c.nodes[1].SyncWith(c.clients["b"]["a"])
	va, _ := c.nodes[0].Lookup("conflict")
	vb, _ := c.nodes[1].Lookup("conflict")
	if va == "" || va != vb {
		t.Fatalf("conflict did not converge: %q vs %q", va, vb)
	}
	// And the winner is stable under further rounds.
	c.nodes[0].SyncWith(c.clients["a"]["b"])
	c.nodes[1].SyncWith(c.clients["b"]["a"])
	va2, _ := c.nodes[0].Lookup("conflict")
	vb2, _ := c.nodes[1].Lookup("conflict")
	if va2 != va || vb2 != va {
		t.Errorf("winner not stable: %q -> %q/%q", va, va2, vb2)
	}
}

func TestCausalOverwriteWins(t *testing.T) {
	// A write that causally follows another (read-then-write through the
	// same node after sync) must win everywhere, regardless of origin
	// name ordering.
	c := makeCluster(t, "zz", "aa") // origin names chosen against the tiebreak
	c.nodes[0].Set("k", "first")    // zz writes
	c.nodes[1].SyncWith(c.clients["aa"]["zz"])
	c.nodes[1].Set("k", "second") // aa overwrites after seeing zz's write
	c.nodes[0].SyncWith(c.clients["zz"]["aa"])
	for i, n := range c.nodes {
		if v, _ := n.Lookup("k"); v != "second" {
			t.Errorf("node %d: causal overwrite lost: %q", i, v)
		}
	}
}
