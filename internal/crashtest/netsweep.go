package crashtest

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smalldb/internal/netsim"
	"smalldb/internal/obs"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
	"smalldb/internal/vfs/faultfs"
)

// ModeNet labels partition-sweep violations.
const ModeNet = "net"

// NetConfig configures a partition sweep: the network analogue of the
// crash-point sweep. The same seeded workload runs once per partition
// point k — replicas are partitioned just before update k, node "a" keeps
// committing (and acknowledging) updates through the partition, the
// partition heals, and anti-entropy must converge both replicas with no
// acknowledged update lost. With Crash set, node "a" additionally loses
// power at the heal point and recovers from its durable image first —
// composing the network torture with the disk torture.
type NetConfig struct {
	// Seed fixes the workload and, combined with the partition point, the
	// per-point network fault schedule; (Seed, point) replays any failure.
	Seed int64
	// Ops is the number of updates in the workload (default 40).
	Ops int
	// Window is how many updates commit on the partitioned node before
	// the heal (default 5).
	Window int
	// From and To bound the partition points, inclusive; To <= 0 means
	// "through the last update that still leaves a full window".
	From, To int
	// Stride replays every Stride-th point (default 1).
	Stride int
	// Shards is the number of points replayed concurrently (default
	// GOMAXPROCS).
	Shards int
	// Crash also power-fails node "a" at the heal point: the acked-in-
	// partition updates must survive the partition plus the crash.
	Crash bool
	// Nodes generalizes the sweep from the hardwired pair to an N-node
	// quorum-commit group (replica.Group). 0 and 2 run the classic pair;
	// N > 2 runs the group sweep: updates commit through the group at
	// write quorum Quorum, each point partitions a seeded minority of
	// non-primary members away from the rest, and — with Crash — the
	// point's rotating victim (point mod N; 0 is the primary) power-fails
	// at the heal point. Quorum-acked updates must survive all of it.
	Nodes int
	// Quorum is the group sweep's write quorum W (0 = majority). The
	// sweep guarantees availability through any minority partition, so W
	// may not exceed the majority — a larger W could not ack the window
	// while the minority is unreachable.
	Quorum int
	// Profile is the network weather for the whole run — drops, delays,
	// flaky dials. Retries must absorb it; the sweep clears the weather
	// only for the final convergence check.
	Profile netsim.Profile
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// NetResult summarizes a partition sweep.
type NetResult struct {
	Seed       int64
	Ops        int
	Window     int
	Points     int
	Violations []Violation
}

// netPolicy fails pushes fast when the peer is partitioned away — the
// window updates must still be acknowledged promptly — while absorbing the
// profile's transient faults by retry.
var netPolicy = rpc.RetryPolicy{MaxAttempts: 4, Budget: 500 * time.Millisecond, BaseDelay: 500 * time.Microsecond, MaxDelay: 5 * time.Millisecond, PerTry: 200 * time.Millisecond}

// RunNet executes the partition sweep.
func RunNet(cfg NetConfig) (*NetResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 40
	}
	if cfg.Window <= 0 {
		cfg.Window = 5
	}
	if cfg.Window > cfg.Ops {
		return nil, fmt.Errorf("crashtest: window %d exceeds ops %d", cfg.Window, cfg.Ops)
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	last := cfg.Ops - cfg.Window
	from := cfg.From
	if from < 0 {
		from = 0
	}
	to := cfg.To
	if to <= 0 || to > last {
		to = last
	}
	var points []int
	for p := from; p <= to; p += cfg.Stride {
		points = append(points, p)
	}

	pointFn := (&netRunner{cfg: cfg, plan: makePlan(cfg.Seed, cfg.Ops)}).point
	if cfg.Nodes > 2 {
		gr, err := newGroupRunner(cfg)
		if err != nil {
			return nil, err
		}
		pointFn = gr.point
	}
	if cfg.Logf != nil {
		cfg.Logf("crashtest: mode=net seed=%d ops=%d window=%d crash=%v nodes=%d quorum=%d points=%d shards=%d",
			cfg.Seed, cfg.Ops, cfg.Window, cfg.Crash, max(cfg.Nodes, 2), cfg.Quorum, len(points), cfg.Shards)
	}

	res := &NetResult{Seed: cfg.Seed, Ops: cfg.Ops, Window: cfg.Window, Points: len(points)}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next atomic.Int64
		done atomic.Int64
	)
	next.Store(-1)
	for w := 0; w < cfg.Shards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(len(points)) {
					return
				}
				vs := pointFn(points[i])
				if len(vs) > 0 {
					mu.Lock()
					res.Violations = append(res.Violations, vs...)
					mu.Unlock()
				}
				if d := done.Add(1); d%32 == 0 && cfg.Logf != nil {
					cfg.Logf("crashtest: %d/%d partition points done", d, len(points))
				}
			}
		}()
	}
	wg.Wait()
	sort.Slice(res.Violations, func(i, j int) bool { return res.Violations[i].Point < res.Violations[j].Point })
	return res, nil
}

type netRunner struct {
	cfg  NetConfig
	plan *plan
}

func (r *netRunner) violation(k int, format string, args ...any) Violation {
	return Violation{Seed: r.cfg.Seed, Mode: ModeNet, Point: int64(k), Msg: fmt.Sprintf(format, args...)}
}

// checkNetFlight validates node "a"'s flight ring on a durable image taken
// at a point where ackedTo updates have been acknowledged: decodable,
// non-empty, newest commit event within one of the acked count (the
// recorder syncs each slot, so only a crash landing on the newest slot's
// own write can lose it — and the partition sweep freezes between ops, so
// in practice the newest commit is exactly ackedTo).
func (r *netRunner) checkNetFlight(k int, fs vfs.FS, ackedTo int) []Violation {
	events, err := obs.ReadFlight(fs, flightName)
	if err != nil {
		return []Violation{r.violation(k, "flight: unreadable on the durable image: %v", err)}
	}
	if len(events) == 0 {
		return []Violation{r.violation(k, "flight: empty tail with %d acked updates", ackedTo)}
	}
	if max := maxCommitSeq(events); max < ackedTo-1 || max > ackedTo {
		return []Violation{r.violation(k, "flight: newest commit event is seq %d but %d updates were acknowledged", max, ackedTo)}
	}
	return nil
}

// netNode is one replica endpoint inside a point's private network.
type netNode struct {
	node *replica.Node
	srv  *rpc.Server
	l    *netsim.Listener
}

func openNetNode(nw *netsim.Network, name string, fs vfs.FS, tracer obs.Tracer) (*netNode, error) {
	node, err := replica.Open(replica.Config{Name: name, FS: fs, HistoryCap: 10000, PushPolicy: netPolicy, SyncPolicy: netPolicy, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	srv := rpc.NewServer()
	if err := srv.Register("Replica", replica.NewService(node)); err != nil {
		node.Close()
		return nil, err
	}
	l, err := nw.Listen(name)
	if err != nil {
		srv.Close()
		node.Close()
		return nil, err
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return &netNode{node: node, srv: srv, l: l}, nil
}

func (n *netNode) close() {
	n.srv.Close()
	n.l.Close()
	n.node.Close()
}

// point replays one partition point, converting a harness panic into a
// violation rather than killing the whole sweep.
func (r *netRunner) point(k int) (vs []Violation) {
	defer func() {
		if p := recover(); p != nil {
			vs = append(vs, r.violation(k, "harness panic: %v", p))
		}
	}()
	return r.netPoint(k)
}

func (r *netRunner) netPoint(k int) []Violation {
	// Every point gets its own network whose schedule is fixed by
	// (workload seed, point): the same pair replays the same weather.
	nw := netsim.New(r.cfg.Seed*1000003+int64(k), netsim.Options{Profile: r.cfg.Profile, TraceCap: 256})
	defer nw.Close()

	ffs := faultfs.New(vfs.NewMem(r.cfg.Seed), faultfs.Options{CrashAt: faultfs.Never})
	fl, err := openFlight(ffs)
	if err != nil {
		return []Violation{r.violation(k, "harness: opening flight recorder: %v", err)}
	}
	defer fl.Close()
	a, err := openNetNode(nw, "a", ffs, fl)
	if err != nil {
		return []Violation{r.violation(k, "harness: opening node a: %v", err)}
	}
	defer func() {
		if a != nil {
			a.close()
		}
	}()
	b, err := openNetNode(nw, "b", vfs.NewMem(r.cfg.Seed+1), nil)
	if err != nil {
		return []Violation{r.violation(k, "harness: opening node b: %v", err)}
	}
	defer b.close()
	abClient := rpc.NewClientDialer(nw.Dialer("a", "b"))
	a.node.AddPeer("b", abClient)
	baClient := rpc.NewClientDialer(nw.Dialer("b", "a"))

	// Prefix: updates [0, k) commit on "a" under the configured weather;
	// pushes propagate best-effort, anti-entropy owes nothing yet.
	for i := 0; i < k; i++ {
		if err := a.node.Apply(r.plan.updates[i]); err != nil {
			return []Violation{r.violation(k, "prefix update %d not acknowledged: %v", i, err)}
		}
	}

	// Partition, then commit the window on "a". Every one of these Apply
	// returns — they are acknowledged to the client — so losing any of
	// them later is a violation.
	nw.Partition("a", "b")
	ackedTo := k + r.cfg.Window
	for i := k; i < ackedTo; i++ {
		if err := a.node.Apply(r.plan.updates[i]); err != nil {
			return []Violation{r.violation(k, "update %d not acknowledged during partition: %v", i, err)}
		}
	}

	if r.cfg.Crash {
		// Power-fail "a": freeze its synced-only durable image and
		// restart from it, as the disk sweep does. The frozen image must
		// hold a decodable flight ring whose newest commit event covers
		// the updates acked during the partition (the recorder syncs each
		// slot before the commit that emitted it is acknowledged).
		frozen := ffs.Snapshot()
		a.close()
		a = nil
		if vs := r.checkNetFlight(k, frozen, ackedTo); vs != nil {
			return vs
		}
		restarted, err := openNetNode(nw, "a", frozen, nil)
		if err != nil {
			return []Violation{r.violation(k, "recovery of the acking node failed: %v", err)}
		}
		a = restarted
		abClient = rpc.NewClientDialer(nw.Dialer("a", "b"))
		a.node.AddPeer("b", abClient)
		vec, err := a.node.Vector()
		if err != nil {
			return []Violation{r.violation(k, "reading recovered vector: %v", err)}
		}
		if recovered := int(vec["a"]); recovered < ackedTo {
			return []Violation{r.violation(k, "durability: recovered %d updates but %d were acknowledged (window acked during partition lost in crash)", recovered, ackedTo)}
		}
	}

	// Heal and clear the weather: convergence is now owed
	// unconditionally, so a residual drop must not masquerade as a
	// correctness failure.
	nw.HealAll()
	nw.SetProfile(netsim.Profile{})
	if vs := r.converge(k, a, b, abClient, baClient, ackedTo, "after partition heal"); vs != nil {
		return vs
	}

	// Finish the workload on "a" and require both replicas to land on the
	// full oracle.
	for i := ackedTo; i < len(r.plan.updates); i++ {
		if err := a.node.Apply(r.plan.updates[i]); err != nil {
			return []Violation{r.violation(k, "post-heal update %d not acknowledged: %v", i, err)}
		}
	}
	if vs := r.converge(k, a, b, abClient, baClient, len(r.plan.updates), "after finishing the workload"); vs != nil {
		return vs
	}
	if !r.cfg.Crash {
		// Without a crash "a" records the whole workload; its durable ring
		// must decode and cover every acknowledged update.
		return r.checkNetFlight(k, ffs.Snapshot(), len(r.plan.updates))
	}
	return nil
}

// converge runs anti-entropy both ways and checks both replicas against the
// oracle prefix of upto updates.
func (r *netRunner) converge(k int, a, b *netNode, ab, ba *rpc.Client, upto int, when string) []Violation {
	if err := a.node.SyncWith(ab); err != nil {
		return []Violation{r.violation(k, "anti-entropy a<-b failed %s: %v", when, err)}
	}
	if err := b.node.SyncWith(ba); err != nil {
		return []Violation{r.violation(k, "anti-entropy b<-a failed %s: %v", when, err)}
	}
	want := r.plan.fp[upto]
	if got, err := replicaFingerprint(a.node); err != nil || got != want {
		return []Violation{r.violation(k, "node a diverges from the oracle prefix of %d updates %s (%v)", upto, when, err)}
	}
	if got, err := replicaFingerprint(b.node); err != nil || got != want {
		return []Violation{r.violation(k, "acked-update loss: node b diverges from the oracle prefix of %d updates %s (%v)", upto, when, err)}
	}
	return nil
}
