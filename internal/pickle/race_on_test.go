//go:build race

package pickle

// raceEnabled reports whether the race detector is on; its instrumentation
// allocates, so alloc-ceiling tests skip themselves under -race.
const raceEnabled = true
