// Package core is the paper's contribution: a small-database engine that
// keeps the entire database as an ordinary strongly typed data structure in
// virtual memory, records each update incrementally in a redo log on disk,
// and occasionally checkpoints the whole structure — recovering from
// crashes by reloading the checkpoint and replaying the log (§3).
//
// The shape of every operation follows the paper:
//
//   - An enquiry (View) is purely a lookup in the virtual memory structure
//     under a shared lock; the disk is not involved.
//   - An update (Apply) proceeds in three steps under the three-mode lock:
//     (1) verify preconditions against the in-memory data under the update
//     lock; (2) pickle the update's parameters and append them to the log —
//     the disk write that is the commit point — still under the update lock,
//     so enquiries keep running; (3) upgrade to exclusive and apply the
//     mutation to the in-memory structure.
//   - A checkpoint (Checkpoint) pickles the entire root under the update
//     lock — in memory only — then writes it to disk and installs it with
//     the version-file protocol in the background while updates keep
//     committing (the WAL mirror-window protocol; see checkpointNonBlocking
//     and DESIGN.md), finally retargeting the log in a brief critical
//     section. Config.BlockingCheckpoint restores the paper's fully-locked
//     variant.
//   - Open recovers: find the current checkpoint, load it, replay the log.
//
// The database root and every update type are ordinary Go values; the
// pickle package converts them to and from bytes, so — as the paper says of
// its name server — there is "no manually written code for casting values
// into low level disk or network bit patterns".
package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"smalldb/internal/checkpoint"
	"smalldb/internal/obs"
	"smalldb/internal/pickle"
	"smalldb/internal/sulock"
	"smalldb/internal/vfs"
	"smalldb/internal/wal"
)

// An Update is a single-shot transaction: all of its parameters are
// gathered before it commits, and no intermediate state is ever visible
// (§1: "there are no update transactions composed of multiple client
// actions").
//
// Concrete update types must be exported structs registered with
// RegisterUpdate so they can be pickled into log entries; their exported
// fields are the update's parameters. Fields computed by Verify for Apply's
// use should be tagged `pickle:"-"`.
type Update interface {
	// Verify checks the update's preconditions (consistency invariants,
	// access controls) against the database root. It runs under the
	// update lock — concurrent enquiries are active — and must not
	// mutate anything.
	Verify(root any) error
	// Apply performs the mutation. It runs under the exclusive lock,
	// after the update has committed to the log, and during replay. It
	// must succeed on any state on which Verify succeeded; an error here
	// is a programming bug that poisons the store (the log and memory
	// now disagree).
	Apply(root any) error
}

// RegisterUpdate registers an update type for pickling, under the type's
// canonical name. Every update type must be registered by both writers and
// recoverers (init functions are the natural place).
func RegisterUpdate(u Update) { pickle.Register(u) }

// logRecord is the pickled form of one log entry: the update in an
// interface field, so the concrete type travels with it.
type logRecord struct {
	U Update
}

// Config configures a Store.
type Config struct {
	// FS is the directory holding the checkpoint and log files.
	FS vfs.FS
	// NewRoot creates an empty database root; used when the directory is
	// uninitialized. The root's concrete type must be registered with
	// pickle.Register.
	NewRoot func() any
	// Retain is how many previous checkpoint+log pairs to keep for
	// hard-error recovery (§4). 0 reproduces the paper's base protocol.
	Retain int
	// GroupCommit releases the locks before waiting for the log disk
	// write, letting concurrent updates share one disk write (§5: "the
	// only schemes that will perform better than this involve arranging
	// to record multiple commit records in a single log entry").
	// Tradeoff: an enquiry may observe an update that a crash then
	// erases, because the in-memory apply precedes durability; the
	// updating client itself still only hears success after the sync.
	GroupCommit bool
	// CoarseLocking is the E8 ablation: hold the exclusive lock for the
	// whole update, disk write included, to measure what the paper's
	// three-mode matrix buys.
	CoarseLocking bool
	// LockedEnquiries disables lock-free snapshot enquiries even when the
	// root implements VersionedRoot: every View takes the shared lock and
	// is excluded during each update's in-memory apply, as in the paper's
	// original three-mode protocol. Kept as an ablation so the read-
	// scaling benchmark can measure what version publication buys.
	LockedEnquiries bool
	// SkipDamagedLogEntries makes recovery hop over unreadable log
	// entries instead of failing, for applications whose updates are
	// independent (§4).
	SkipDamagedLogEntries bool
	// ReplayWorkers controls restart's decode pipeline: 0 picks a size
	// from the machine (bounded), 1 forces the sequential replay, n > 1
	// decodes log entries on n goroutines while applying them strictly in
	// sequence order — the recovered state is identical either way.
	ReplayWorkers int
	// LogShards splits the redo log into this many parallel streams
	// (logfileN, logfileN.1, ...), each with its own syncer; updates hash
	// to a stream by global sequence and commit under epoch-based group
	// commit — an update is acknowledged once every stream that wrote in
	// its epoch has synced. 0 and 1 are the paper's single stream. The
	// recovered state is identical either way (restart merges the streams
	// by sequence), and the count may change across restarts. Sharding
	// implies the group-commit pipeline: the in-memory apply precedes the
	// durability wait, exactly as under GroupCommit, and versioned
	// enquiries still only ever observe durable state (publication is
	// deferred to the epoch barrier).
	LogShards int
	// SerialLogSync makes each sharded epoch seal sync its streams one at
	// a time in stream order instead of in parallel. It exists for the
	// deterministic crash sweeps, which need a deterministic file-
	// operation order; it costs exactly the parallel-sync win.
	SerialLogSync bool
	// MaxLogBytes, when > 0, triggers an automatic checkpoint after an
	// update leaves the log larger than this.
	MaxLogBytes int64
	// MaxLogEntries, when > 0, triggers an automatic checkpoint after
	// the log holds more than this many entries.
	MaxLogEntries int64
	// ArchiveLogs keeps every log as archive-logfileN when its version
	// is superseded, instead of deleting it — the §4 audit trail. The
	// History method replays it.
	ArchiveLogs bool
	// UnsafeNoSync skips the sync on every log append: there is no
	// commit point, and a crash can lose acknowledged updates. It exists
	// only as an ablation (E5/E9) quantifying what the paper's one disk
	// write per update buys and costs.
	UnsafeNoSync bool
	// BlockingCheckpoint restores the paper's original §3 checkpoint:
	// the update lock is held across the entire disk transfer, excluding
	// updates for the checkpoint's whole duration. By default checkpoints
	// hold the update lock only while the root is pickled in memory and
	// do every disk write in the background (the mirror-window protocol).
	// The blocking path remains as the E-series ablation and is implied
	// by UnsafeNoSync, whose missing commit point defeats the mirror
	// window's durability reasoning.
	BlockingCheckpoint bool
	// FullCheckpoints disables incremental delta checkpoints: every
	// checkpoint pickles the entire root, as the paper's §3 does. By
	// default a root that implements DeltaRoot (and serves versioned
	// enquiries) checkpoints only the subtrees changed since the previous
	// checkpoint, chained onto the last full image; see DeltaRoot and
	// internal/checkpoint's delta-chain notes. Kept as the ablation the
	// checkpoint_scaling experiment measures against. Implied by
	// BlockingCheckpoint and UnsafeNoSync, whose paths always write full
	// roots.
	FullCheckpoints bool
	// MaxDeltaChain bounds the delta chain: once a checkpoint would make
	// the chain (full base + deltas) longer than this, a compaction
	// rewrites the chain into a fresh full image. 0 means the default
	// (DefaultMaxDeltaChain). Longer chains mean less checkpoint I/O and
	// more restart work.
	MaxDeltaChain int
	// MaxDeltaRatio bounds the chain's cumulative delta bytes relative to
	// its base image: past base*MaxDeltaRatio a compaction runs, and any
	// single delta that large is written as a full image instead (at that
	// point the delta machinery saves nothing). 0 means the default
	// (DefaultMaxDeltaRatio).
	MaxDeltaRatio float64
	// SerialCompaction runs a due compaction synchronously inside the
	// Checkpoint call that made it due, instead of on a background
	// goroutine. It exists for the deterministic crash sweeps, which need
	// a deterministic file-operation order; like SerialLogSync it costs
	// exactly the concurrency it removes.
	SerialCompaction bool
	// Obs, when non-nil, receives the store's metrics (core_*), the
	// log's (wal_*), the checkpoint protocol's (checkpoint_*) and the
	// three-mode lock's (core_lock_*), for export through the debug
	// endpoint. The store keeps its phase histograms regardless, so
	// Stats() always carries percentiles.
	Obs *obs.Registry
	// Tracer, when non-nil, receives structured events: update.commit,
	// checkpoint.start/finish, restart.replay, log.flush, lock.wait.
	Tracer obs.Tracer
}

// Stats is a snapshot of the store's cumulative instrumentation. The phase
// timers decompose an update exactly as the paper's §5 does: exploring the
// structure (verify), converting parameters to bits (pickle), the disk
// write of the log entry (commit), and modifying the structure (apply).
// The cumulative sums are kept for compatibility; the Dist fields carry the
// full distributions (histogram snapshots in nanoseconds) so callers can
// read p50/p90/p99/max per phase, not just means.
type Stats struct {
	Enquiries   uint64
	Updates     uint64
	Checkpoints uint64
	// DeltaCheckpoints counts the checkpoints (included in Checkpoints)
	// that wrote a delta file instead of a full image; Compactions counts
	// the full checkpoints forced to collapse a delta chain.
	DeltaCheckpoints uint64
	Compactions      uint64
	// LastCheckpointBytes is the pickled size of the most recent
	// checkpoint file — the I/O a checkpoint actually cost, which with
	// deltas is proportional to churn, not root size. ChainLength is the
	// current chain's file count (1 = a lone full image).
	LastCheckpointBytes int64
	ChainLength         int

	VerifyTime time.Duration
	PickleTime time.Duration
	CommitTime time.Duration
	ApplyTime  time.Duration

	// Per-update phase latency distributions, in nanoseconds.
	VerifyDist obs.Snapshot
	PickleDist obs.Snapshot
	CommitDist obs.Snapshot
	ApplyDist  obs.Snapshot

	CheckpointPickleTime time.Duration
	CheckpointIOTime     time.Duration
	// CheckpointStallTime is the update-lock hold time attributable to
	// checkpoints: with the default non-blocking path, only the in-memory
	// pickle; with BlockingCheckpoint, the checkpoint's whole duration.
	CheckpointStallTime time.Duration
	// CheckpointSwitchTime covers the version-switch protocol: new log
	// creation, mirror drain, newversion commit, install and retention
	// cleanup — everything past the checkpoint file write.
	CheckpointSwitchTime time.Duration

	// Per-checkpoint phase distributions, in nanoseconds.
	CheckpointPickleDist obs.Snapshot
	CheckpointIODist     obs.Snapshot
	CheckpointStallDist  obs.Snapshot
	CheckpointSwitchDist obs.Snapshot

	// Restart decomposition: RestartCheckpointTime is reading the chain's
	// full base image (proportional to root size), RestartDeltaTime is
	// reading and applying the chain's deltas (proportional to churn since
	// the base), RestartReplayTime is the log replay. The scaling claim the
	// checkpoint_scaling experiment gates on is about the delta and replay
	// components; the base read is paid once per chain, not per restart of
	// a busy store (compaction refreshes it).
	RestartCheckpointTime time.Duration
	RestartDeltaTime      time.Duration
	RestartDeltaBytes     int64
	RestartDeltasApplied  int
	RestartReplayTime     time.Duration
	RestartEntries        int
	RestartSkippedDamaged int
	RestartTornTail       bool
	RestartUsedFallback   bool

	LogBytes   int64
	LogEntries int64
	AppliedSeq uint64
}

// storeLog is the store's view of its redo log. Both layouts — the paper's
// single *wal.Log and the sharded *wal.Sharded — commit, flush, mirror and
// close identically; opening and the mirror-window attach (one file vs one
// per stream) are the only branch points, and both live behind openLog and
// checkpointNonBlocking.
type storeLog interface {
	Append(payload []byte) (uint64, error)
	AppendAsync(payload []byte) (uint64, func() error)
	Flush() error
	Size() int64
	Close() error
	MirrorActive() bool
	BeginMirror() error
	SyncMirror() error
	FinishMirror(newName string) (int64, error)
	AbortMirror()
}

// pendingPub is one update applied in memory but not yet acknowledged
// durable by its epoch barrier: its captured version view waits in the
// publication queue until the durable frontier covers its sequence.
type pendingPub struct {
	seq  uint64
	view any
}

// Store is an open small database.
type Store struct {
	cfg  Config
	lock sulock.Lock

	// root is the working (mutable) database root, guarded by lock:
	// updates mutate it under exclusive mode. With a versioned root,
	// enquiries never touch it — they read the published version below —
	// and every mutation is copy-on-write with respect to published
	// views. With an unversioned root, enquiries read it under shared.
	root any

	// versioned reports that root implements VersionedRoot (and the
	// LockedEnquiries ablation is off): enquiries are lock-free reads of
	// vs's published version.
	versioned bool
	vs        versionSet
	vm        versionMetrics

	// enquiries counts Views on an atomic so the lock-free read path
	// never takes statMu.
	enquiries atomic.Uint64

	// pubMu guards the deferred-publication queue of the sharded commit
	// path: views captured under the exclusive lock, published in sequence
	// order once the epoch barrier acknowledges them.
	pubMu      sync.Mutex
	pendingPub []pendingPub

	// mu guards the fields below (log/checkpoint administration).
	mu         sync.Mutex
	log        storeLog
	cpState    checkpoint.State
	applied    uint64 // sequence of the last update applied to root
	logEntries int64
	poisoned   error
	closed     bool
	lastCPErr  error                 // outcome of the most recent checkpoint attempt
	cpHook     func(CheckpointStage) // test instrumentation; see SetCheckpointStageHook

	checkpointing atomic.Bool    // auto-checkpoint in flight
	compacting    atomic.Bool    // background compaction in flight
	cpMu          sync.Mutex     // serializes whole checkpoints end to end
	cpWG          sync.WaitGroup // in-flight auto-checkpoint goroutines; Close waits

	// Delta-checkpoint state, guarded by cpMu (set without it only during
	// Open, before the store is shared). cpPrevView is the published view
	// pinned at the last successful checkpoint — the base the next delta
	// diffs against; nil means the next checkpoint must be full. cpPrevSeq
	// is that checkpoint's NextSeq. Retaining the view costs memory
	// proportional to the churn since it was pinned (the COW discipline
	// shares everything unchanged).
	cpPrevView any
	cpPrevSeq  uint64

	// Chain accounting, read by compactionDue off the checkpoint path.
	baseBytes  atomic.Int64 // pickled size of the chain's full base image
	deltaBytes atomic.Int64 // cumulative delta sizes since that base

	// statMu guards stats. Every write to stats — including the
	// restart-time fields set during Open — goes through recordStats, so
	// Stats() can be called concurrently with anything.
	statMu sync.Mutex
	stats  Stats

	// hist holds the store-private phase histograms backing the Dist
	// fields of Stats; always non-nil, shared with cfg.Obs when set.
	hist struct {
		verify, pickle, commit, apply *obs.Histogram
		cpPickle, cpIO                *obs.Histogram
		cpStall, cpSwitch             *obs.Histogram
	}
	// ctr mirrors the headline counters into cfg.Obs (nil-safe when no
	// registry is configured).
	ctr struct {
		enquiries, updates, checkpoints *obs.Counter
		cpErrors, cpMirrored            *obs.Counter
		deltaCheckpoints, compactions   *obs.Counter
	}
	cpInflight *obs.Gauge
	tracer     obs.Tracer

	stopTimer chan struct{}
	timerWG   sync.WaitGroup
}

// initObs builds the store's instrumentation: private phase histograms
// (always), plus registration into cfg.Obs and lock instrumentation when a
// registry or tracer is configured.
func (s *Store) initObs() {
	s.tracer = s.cfg.Tracer
	s.hist.verify = obs.NewHistogram()
	s.hist.pickle = obs.NewHistogram()
	s.hist.commit = obs.NewHistogram()
	s.hist.apply = obs.NewHistogram()
	s.hist.cpPickle = obs.NewHistogram()
	s.hist.cpIO = obs.NewHistogram()
	s.hist.cpStall = obs.NewHistogram()
	s.hist.cpSwitch = obs.NewHistogram()
	reg := s.cfg.Obs
	s.ctr.enquiries = reg.Counter("core_enquiries")
	s.ctr.updates = reg.Counter("core_updates")
	s.ctr.checkpoints = reg.Counter("core_checkpoints")
	s.ctr.cpErrors = reg.Counter("core_checkpoint_errors")
	s.ctr.cpMirrored = reg.Counter("checkpoint_mirrored_entries")
	s.ctr.deltaCheckpoints = reg.Counter("core_delta_checkpoints")
	s.ctr.compactions = reg.Counter("core_compactions")
	s.cpInflight = reg.Gauge("core_checkpoint_inflight")
	if reg != nil {
		reg.Register("core_update_verify_ns", s.hist.verify)
		reg.Register("core_update_pickle_ns", s.hist.pickle)
		reg.Register("core_update_commit_ns", s.hist.commit)
		reg.Register("core_update_apply_ns", s.hist.apply)
		reg.Register("core_checkpoint_pickle_ns", s.hist.cpPickle)
		reg.Register("core_checkpoint_io_ns", s.hist.cpIO)
		reg.Register("checkpoint_stall_ns", s.hist.cpStall)
		reg.Register("core_checkpoint_switch_ns", s.hist.cpSwitch)
		reg.Register("core_log_bytes", func() any {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.log == nil {
				return int64(0)
			}
			return s.log.Size()
		})
		reg.Register("core_log_entries", func() any {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.logEntries
		})
		reg.Register("core_applied_seq", func() any { return s.AppliedSeq() })
		reg.Register("core_checkpoint_version", func() any { return s.Version() })
		reg.Register("core_checkpoint_chain_len", func() any {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.cpState.Version - s.cpState.Base + 1)
		})
		reg.Register("core_log_shards", func() any { return int64(s.logShards()) })
		reg.Register("replay_decode_workers", func() any { return s.replayWorkers() })
		reg.Register("pickle_plan_compiles", func() any {
			st := pickle.Stats()
			return st.EncPlanCompiles + st.DecPlanCompiles
		})
		reg.Register("pickle_enc_pool_hit_rate", func() any { return poolHitRate(pickle.Stats().EncPoolGets, pickle.Stats().EncPoolMisses) })
		reg.Register("pickle_dec_pool_hit_rate", func() any { return poolHitRate(pickle.Stats().DecPoolGets, pickle.Stats().DecPoolMisses) })
	}
	s.initVersionObs(reg)
	if reg != nil || s.tracer != nil {
		// With lock-free enquiries the shared mode is never acquired on
		// this lock; skip its wait/contention series so /stats does not
		// export dead metrics.
		var opts []sulock.InstrumentOption
		if s.versioned {
			opts = append(opts, sulock.SkipShared())
		}
		s.lock.Instrument(reg, "core", s.tracer, opts...)
	}
}

// poolHitRate renders a pool's hit rate in percent (gets that found warm
// state), or -1 before any get.
func poolHitRate(gets, misses uint64) any {
	if gets == 0 {
		return -1
	}
	if misses > gets { // counters are read racily; clamp
		misses = gets
	}
	return int64((gets - misses) * 100 / gets)
}

// recordStats is the single mutation path for s.stats; all writers funnel
// through it so the lock discipline lives in one place.
func (s *Store) recordStats(fn func(st *Stats)) {
	s.statMu.Lock()
	fn(&s.stats)
	s.statMu.Unlock()
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("core: store is closed")

// header is the first value in every full checkpoint file: the sequence
// number the log that accompanies the checkpoint starts at, then the root.
type header struct {
	NextSeq uint64
	Root    any
}

// deltaHeader is the sole value in a delta checkpoint file (checkpointN.d):
// the chain link plus the root delta. Version and Parent pin the file to
// its place in the chain (Parent is always Version-1; recovery verifies
// both against the file name). FromSeq..NextSeq-1 is the sequence range the
// delta covers: FromSeq is the parent checkpoint's NextSeq, NextSeq is this
// one's. Subtrees counts the delta's subtree operations, for inspection
// (cmd/logdump -checkpoint). Delta's concrete type is the root's own
// (registered) delta representation.
type deltaHeader struct {
	Version  uint64
	Parent   uint64
	FromSeq  uint64
	NextSeq  uint64
	Subtrees int
	Delta    any
}

// Open recovers a store from cfg.FS, initializing an empty database if the
// directory is virgin. The recovery sequence is the paper's: determine the
// current checkpoint (discarding partial ones), read it, replay the log.
func Open(cfg Config) (*Store, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("core: Config.FS is required")
	}
	if cfg.NewRoot == nil {
		return nil, fmt.Errorf("core: Config.NewRoot is required")
	}
	if cfg.LogShards > 1 && cfg.SkipDamagedLogEntries {
		// In a sequence merge, hopping over a damaged entry is
		// indistinguishable from truncating at an epoch gap; see the
		// sharded recovery notes in internal/wal.
		return nil, fmt.Errorf("core: SkipDamagedLogEntries is not supported with LogShards > 1")
	}
	s := &Store{cfg: cfg}
	if !cfg.LockedEnquiries {
		// Probe a throwaway root: versioning is a property of the root
		// type, and initObs needs it to pick the lock instrumentation.
		_, s.versioned = cfg.NewRoot().(VersionedRoot)
	}
	s.initObs()

	st, err := checkpoint.RecoverWith(cfg.FS, s.cpOpts())
	if errors.Is(err, checkpoint.ErrNotInitialized) {
		return s.initFresh()
	}
	if err != nil {
		return nil, err
	}
	if err := s.load(st); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) initFresh() (*Store, error) {
	root := s.cfg.NewRoot()
	var baseBytes int64
	st, err := checkpoint.Init(s.cfg.FS, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		werr := pickle.Write(cw, &header{NextSeq: 1, Root: root})
		baseBytes = cw.n
		return werr
	})
	if err != nil {
		return nil, err
	}
	l, err := s.openLog(st.LogName(), 1)
	if err != nil {
		return nil, err
	}
	s.root = root
	s.log = l
	s.cpState = st
	s.applied = 0
	s.baseBytes.Store(baseBytes)
	s.seedDeltaBase(root, 1)
	s.publish(0)
	return s, nil
}

// seedDeltaBase pins the view the next checkpoint will diff against, when
// the configuration and root type support delta checkpoints at all.
func (s *Store) seedDeltaBase(root any, nextSeq uint64) {
	if s.cfg.FullCheckpoints || s.cfg.BlockingCheckpoint || s.cfg.UnsafeNoSync || !s.versioned {
		return
	}
	dr, ok := root.(DeltaRoot)
	if !ok {
		return
	}
	s.cpPrevView = dr.SnapshotView()
	s.cpPrevSeq = nextSeq
}

// load reads the current checkpoint chain (full base plus deltas) and
// replays its log. If the chain is unreadable (hard error) and a previous
// version is retained, it falls back: load the previous version's chain,
// replay the previous log, then replay the current log (§4).
func (s *Store) load(st checkpoint.State) error {
	replayOpts := wal.ReplayOptions{Repair: true, SkipDamaged: s.cfg.SkipDamagedLogEntries, Obs: s.cfg.Obs}

	hdr, cs, err := s.readChain(st.Chain())
	var res wal.ReplayResult
	usedFallback := false
	if err == nil {
		s.baseBytes.Store(cs.baseBytes)
		s.deltaBytes.Store(cs.deltaBytes)
		// Pin the chain's state — exactly what on-disk version st.Version
		// records, before replay mutates the root — so the first
		// post-restart checkpoint can chain a delta onto it.
		s.seedDeltaBase(hdr.Root, hdr.NextSeq)
		res, err = s.replayInto(hdr, st.LogName(), hdr.NextSeq, replayOpts)
	}
	if err != nil && len(st.Retained) > 0 {
		// Hard-error fallback through the newest retained version. The
		// next checkpoint after a fallback is always full: the on-disk
		// current version is damaged and must not become a delta parent.
		s.cpPrevView, s.cpPrevSeq = nil, 0
		prev := st.Retained[len(st.Retained)-1]
		chain, cerr := checkpoint.ChainOf(s.cfg.FS, prev)
		if cerr != nil {
			return fmt.Errorf("core: current checkpoint unusable (%v) and previous one too: %w", err, cerr)
		}
		var ferr error
		hdr, cs, ferr = s.readChain(chain)
		if ferr != nil {
			return fmt.Errorf("core: current checkpoint unusable (%v) and previous one too: %w", err, ferr)
		}
		s.baseBytes.Store(cs.baseBytes)
		s.deltaBytes.Store(cs.deltaBytes)
		prevRes, ferr := s.replayInto(hdr, checkpoint.LogName(prev), hdr.NextSeq, replayOpts)
		if ferr != nil {
			return fmt.Errorf("core: current checkpoint unusable (%v) and previous log too: %w", err, ferr)
		}
		res, ferr = s.replayInto(hdr, st.LogName(), prevRes.NextSeq, replayOpts)
		if ferr != nil {
			return fmt.Errorf("core: current checkpoint unusable (%v) and current log too: %w", err, ferr)
		}
		res.Entries += prevRes.Entries
		res.Damaged += prevRes.Damaged
		usedFallback = true
	} else if err != nil {
		return err
	}

	l, err := s.openLog(st.LogName(), res.NextSeq)
	if err != nil {
		return err
	}
	s.root = hdr.Root
	s.log = l
	s.cpState = st
	s.applied = res.NextSeq - 1
	s.logEntries = int64(res.Entries)
	s.publish(s.applied)
	s.recordStats(func(stats *Stats) {
		stats.RestartCheckpointTime = cs.baseTime
		stats.RestartDeltaTime = cs.deltaTime
		stats.RestartDeltaBytes = cs.deltaBytes
		stats.RestartDeltasApplied = cs.deltas
		stats.RestartEntries = res.Entries
		stats.RestartSkippedDamaged = res.Damaged
		stats.RestartTornTail = res.Truncated
		stats.RestartUsedFallback = usedFallback
		stats.AppliedSeq = s.applied
	})
	return nil
}

// chainStats decomposes what loading a chain cost: the full base image
// (proportional to root size) versus the deltas (proportional to churn).
type chainStats struct {
	baseTime   time.Duration
	baseBytes  int64
	deltaTime  time.Duration
	deltaBytes int64
	deltas     int
}

// readChain loads a checkpoint chain — chain[0] is the full base image,
// the rest deltas applied in version order — returning the reconstructed
// header (NextSeq is the last link's).
func (s *Store) readChain(chain []uint64) (*header, chainStats, error) {
	var cs chainStats
	hdr, n, dur, err := s.readCheckpoint(checkpoint.CheckpointName(chain[0]))
	if err != nil {
		return nil, cs, err
	}
	cs.baseBytes, cs.baseTime = n, dur
	for _, w := range chain[1:] {
		dh, n, dur, err := s.readDelta(checkpoint.DeltaName(w), w)
		if err != nil {
			return nil, cs, err
		}
		dr, ok := hdr.Root.(DeltaRoot)
		if !ok {
			return nil, cs, fmt.Errorf("core: checkpoint chain holds deltas but root type %T cannot apply them", hdr.Root)
		}
		if dh.FromSeq != hdr.NextSeq {
			return nil, cs, fmt.Errorf("core: delta checkpoint %d covers sequences from %d but its parent ends at %d", w, dh.FromSeq, hdr.NextSeq)
		}
		if err := dr.ApplyDelta(dh.Delta); err != nil {
			return nil, cs, fmt.Errorf("core: applying delta checkpoint %d: %w", w, err)
		}
		hdr.NextSeq = dh.NextSeq
		cs.deltaBytes += n
		cs.deltaTime += dur
		cs.deltas++
	}
	return hdr, cs, nil
}

func (s *Store) readCheckpoint(name string) (*header, int64, time.Duration, error) {
	start := time.Now()
	f, err := s.cfg.FS.Open(name)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	var hdr header
	// Prefetch the file ahead of the decoder so disk reads overlap
	// decode CPU; the decoder adds its own small-read buffering on top.
	ra := checkpoint.NewReadAhead(f)
	defer ra.Close()
	cr := &countingReader{r: ra}
	if err := pickle.Read(cr, &hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("core: reading checkpoint %s: %w", name, err)
	}
	if hdr.Root == nil || hdr.NextSeq == 0 {
		return nil, 0, 0, fmt.Errorf("core: checkpoint %s is malformed", name)
	}
	return &hdr, cr.n, time.Since(start), nil
}

// readDelta reads one delta checkpoint file and validates its chain link
// against the version its name claims.
func (s *Store) readDelta(name string, want uint64) (*deltaHeader, int64, time.Duration, error) {
	start := time.Now()
	f, err := s.cfg.FS.Open(name)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	ra := checkpoint.NewReadAhead(f)
	defer ra.Close()
	cr := &countingReader{r: ra}
	var dh deltaHeader
	if err := pickle.Read(cr, &dh); err != nil {
		return nil, 0, 0, fmt.Errorf("core: reading delta checkpoint %s: %w", name, err)
	}
	if dh.Version != want || dh.Parent != want-1 || dh.NextSeq == 0 || dh.Delta == nil {
		return nil, 0, 0, fmt.Errorf("core: delta checkpoint %s is malformed (version %d, parent %d)", name, dh.Version, dh.Parent)
	}
	return &dh, cr.n, time.Since(start), nil
}

// replayWorkers resolves Config.ReplayWorkers: 0 sizes the decode pool
// from the machine, capped — past a handful of decoders the strictly
// sequential apply is the bottleneck and more goroutines only buy memory
// traffic.
func (s *Store) replayWorkers() int {
	if s.cfg.ReplayWorkers != 0 {
		return s.cfg.ReplayWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// replayInto replays the named log onto hdr.Root, returning the replay
// result. When the log was replayed after a fallback checkpoint, firstSeq
// overrides the header's. Decoding runs on the replayWorkers() pipeline;
// updates are applied strictly in sequence order, so the recovered root is
// identical to a sequential replay. Recovery is layout-discovering: when
// stream files (logfileN.1, ...) exist beside the base log, all streams
// replay concurrently and merge by global sequence — whatever LogShards is
// configured now — and with only the base file this is exactly the
// single-stream pipelined replay.
func (s *Store) replayInto(hdr *header, logName string, firstSeq uint64, opts wal.ReplayOptions) (wal.ReplayResult, error) {
	// Progress events let an operator watch a long restart converge.
	const progressEvery = 10000
	start := time.Now()
	sres, err := wal.ReplayShardedPipelined(s.cfg.FS, logName, firstSeq, opts, s.replayWorkers(),
		func(seq uint64, payload []byte) (any, error) {
			rec := new(logRecord)
			if err := pickle.Unmarshal(payload, rec); err != nil {
				return nil, fmt.Errorf("core: log entry %d undecodable: %w", seq, err)
			}
			if rec.U == nil {
				return nil, fmt.Errorf("core: log entry %d holds no update", seq)
			}
			return rec, nil
		},
		func(seq uint64, v any) error {
			if err := v.(*logRecord).U.Apply(hdr.Root); err != nil {
				return fmt.Errorf("core: replaying entry %d: %w", seq, err)
			}
			if n := seq - firstSeq + 1; n%progressEvery == 0 {
				obs.Emit(s.tracer, obs.Event{Name: "replay.progress", Dur: time.Since(start), Attrs: []obs.Attr{
					obs.A("log", logName), obs.A("entries", n),
				}})
			}
			return nil
		})
	res := wal.ReplayResult{
		Entries:   sres.Entries,
		LastSeq:   sres.LastSeq,
		NextSeq:   sres.NextSeq,
		Truncated: sres.Truncated,
		Damaged:   sres.Damaged,
	}
	dur := time.Since(start)
	s.recordStats(func(st *Stats) { st.RestartReplayTime += dur })
	obs.Emit(s.tracer, obs.Event{Name: "restart.replay", Dur: dur, Err: err, Attrs: []obs.Attr{
		obs.A("log", logName), obs.A("entries", res.Entries), obs.A("damaged", res.Damaged), obs.A("torn", res.Truncated),
		obs.A("streams", len(sres.Names)), obs.A("discarded", sres.Discarded),
		obs.A("decode_workers", s.replayWorkers()),
	}})
	return res, err
}

// View runs fn on the database root: the paper's enquiry. fn must not
// mutate the root, and must not retain references to it after returning.
//
// With a versioned root (see VersionedRoot) the enquiry is lock-free: fn
// runs on the current published version, loaded through one atomic
// pointer read, with no blocking and no exclusion window — updates and
// checkpoints proceed underneath it. The view is consistent as of one
// committed sequence number. (Under Config.GroupCommit an enquiry may, as
// before, observe an update whose durability sync is still in flight.)
//
// With an unversioned root — or Config.LockedEnquiries — fn runs on the
// working root under the shared lock, excluded during each update's
// in-memory apply, exactly the paper's protocol.
func (s *Store) View(fn func(root any) error) error {
	if v := s.vs.pub.Load(); v != nil {
		s.enquiries.Add(1)
		s.ctr.enquiries.Inc()
		return fn(v.root)
	}
	s.lock.Shared()
	defer s.lock.SharedUnlock()
	s.enquiries.Add(1)
	s.ctr.enquiries.Inc()
	s.vm.locked.Inc()
	return fn(s.root)
}

// recordUpdate folds one committed update's phase durations into the sums,
// histograms and counters, and emits the update.commit event — as the
// closing of the update's root span when upd is active (a traced apply),
// as a flat event otherwise. Phases are passed as durations rather than
// boundary timestamps because the sharded commit path's phases are not
// consecutive: its commit (the epoch-barrier wait) runs after the apply.
func (s *Store) recordUpdate(start time.Time, verify, pickling, commit, apply time.Duration, seq uint64, payloadBytes int, upd obs.Span) {
	s.hist.verify.ObserveDuration(verify)
	s.hist.pickle.ObserveDuration(pickling)
	s.hist.commit.ObserveDuration(commit)
	s.hist.apply.ObserveDuration(apply)
	s.ctr.updates.Inc()
	s.recordStats(func(st *Stats) {
		st.Updates++
		st.VerifyTime += verify
		st.PickleTime += pickling
		st.CommitTime += commit
		st.ApplyTime += apply
		st.AppliedSeq = seq
	})
	if upd.Active() {
		upd.End(nil, obs.A("seq", seq), obs.A("bytes", payloadBytes), obs.A("commit", commit.Round(time.Microsecond)))
		return
	}
	obs.Emit(s.tracer, obs.Event{Name: "update.commit", Time: start, Dur: verify + pickling + commit + apply, Attrs: []obs.Attr{
		obs.A("seq", seq), obs.A("bytes", payloadBytes), obs.A("commit", commit.Round(time.Microsecond)),
	}})
}

// Apply runs one update through the paper's three-step protocol. On return
// the update is durable and applied — unless GroupCommit is on, in which
// case it is applied and the return still waits for durability, but other
// updates may share the disk write.
func (s *Store) Apply(u Update) error {
	return s.ApplyTraced(u, obs.SpanContext{})
}

// ApplyTraced is Apply carrying a trace context. When sc belongs to a
// trace and the store has a tracer, the whole update becomes an
// "update.commit" span under sc with child spans for each phase of the
// paper's protocol — lock wait, verify, pickle, WAL append, the durability
// sync (tagged with the checkpoint mirror when one is open), and the
// exclusive-mode memory mutation — so a single commit's latency can be
// read phase by phase off the trace. An invalid sc (or the CoarseLocking
// ablation) degrades to exactly the untraced path.
func (s *Store) ApplyTraced(u Update, sc obs.SpanContext) error {
	if s.cfg.CoarseLocking {
		return s.applyCoarse(u)
	}

	traced := sc.Trace != 0 && s.tracer != nil && s.tracer != obs.Nop
	var upd obs.Span
	var lockStart time.Time
	if traced {
		upd = obs.StartSpan(s.tracer, sc, "update.commit")
		lockStart = time.Now()
	}
	uctx := upd.Context()
	lockWait := s.lock.UpdateWaited()
	if traced {
		s.tracer.Emit(obs.Event{Name: "lock.wait", Time: lockStart, Dur: lockWait,
			Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span,
			Attrs: []obs.Attr{obs.A("mode", "update")}})
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.lock.UpdateUnlock()
		return ErrClosed
	}
	if s.poisoned != nil {
		err := s.poisoned
		s.mu.Unlock()
		s.lock.UpdateUnlock()
		return err
	}
	log := s.log
	s.mu.Unlock()

	// Step 1: verify preconditions; enquiries are running.
	t0 := time.Now()
	if err := u.Verify(s.root); err != nil {
		s.lock.UpdateUnlock()
		return err
	}
	t1 := time.Now()

	// Step 2: gather the parameters into a log entry and write it to
	// disk — the commit point. Enquiries still running. The payload is
	// pickled into a pooled buffer; the log frames it into its own
	// pending buffer before AppendAsync returns, so the buffer goes
	// straight back to the pool and the steady-state path allocates
	// nothing.
	bufp := payloadPool.Get().(*[]byte)
	payload, err := pickle.AppendMarshal((*bufp)[:0], &logRecord{U: u})
	if err != nil {
		s.lock.UpdateUnlock()
		return fmt.Errorf("core: pickling update: %w", err)
	}
	payloadBytes := len(payload)
	t2 := time.Now()

	var commitErr error
	var wait func() error
	var seq uint64
	sl, sharded := log.(*wal.Sharded)
	switch {
	case sharded:
		// The sharded commit pipeline: take a global sequence from the
		// ticket and frame the entry into its stream's pending buffer —
		// no I/O — then apply in memory and wait out the epoch barrier
		// after the locks are released, sharing it with every concurrent
		// committer. Durability semantics are GroupCommit's.
		seq, wait = log.AppendAsync(payload)
		if traced {
			s.tracer.Emit(obs.Event{Name: "wal.append", Time: t2, Dur: time.Since(t2),
				Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span,
				Attrs: []obs.Attr{obs.A("seq", seq), obs.A("bytes", payloadBytes)}})
		}
	case s.cfg.GroupCommit:
		seq, wait = log.AppendAsync(payload)
	case traced:
		// Split the commit into its two disk-visible halves — framing
		// into the pending buffer, then the write+sync that makes it
		// durable — so the trace shows where the commit's time went.
		// AppendAsync followed by its wait is exactly Append.
		var syncWait func() error
		seq, syncWait = log.AppendAsync(payload)
		tAppend := time.Now()
		s.tracer.Emit(obs.Event{Name: "wal.append", Time: t2, Dur: tAppend.Sub(t2),
			Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span,
			Attrs: []obs.Attr{obs.A("seq", seq), obs.A("bytes", payloadBytes)}})
		mirror := log.MirrorActive()
		commitErr = syncWait()
		tSync := time.Now()
		s.tracer.Emit(obs.Event{Name: "wal.sync", Time: tAppend, Dur: tSync.Sub(tAppend),
			Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span, Err: commitErr,
			Attrs: []obs.Attr{obs.A("seq", seq)}})
		if mirror {
			s.tracer.Emit(obs.Event{Name: "checkpoint.mirror", Time: tAppend, Dur: tSync.Sub(tAppend),
				Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span,
				Attrs: []obs.Attr{obs.A("dual_write", true)}})
		}
	default:
		seq, commitErr = log.Append(payload)
	}
	putPayloadBuf(bufp, payload)
	if commitErr != nil {
		s.poison(commitErr)
		s.lock.UpdateUnlock()
		return commitErr
	}
	t3 := time.Now()
	if traced {
		s.tracer.Emit(obs.Event{Name: "verify", Time: t0, Dur: t1.Sub(t0),
			Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span})
		s.tracer.Emit(obs.Event{Name: "pickle", Time: t1, Dur: t2.Sub(t1),
			Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span,
			Attrs: []obs.Attr{obs.A("bytes", payloadBytes)}})
	}

	// Step 3: convert to exclusive and modify the virtual memory
	// structure.
	upWait := s.lock.UpgradeWaited()
	if traced && upWait > 0 {
		s.tracer.Emit(obs.Event{Name: "lock.wait", Time: t3, Dur: upWait,
			Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span,
			Attrs: []obs.Attr{obs.A("mode", "upgrade")}})
	}
	applyErr := u.Apply(s.root)
	if applyErr == nil {
		if sharded {
			// Deferred publication: capture the new version now, under
			// the exclusive lock, but publish only once the epoch
			// barrier acknowledges the sequence — lock-free enquiries
			// never observe state a crash could erase, even though the
			// in-memory apply ran ahead of the sync.
			s.queuePublish(seq)
		} else {
			// Publication point: the version becomes visible to
			// lock-free enquiries here, after the WAL commit above and
			// the in-memory apply, still inside the exclusive section
			// so publishes are serialized in sequence order.
			s.publish(seq)
		}
		s.mu.Lock()
		s.applied = seq
		s.logEntries++
		s.mu.Unlock()
	}
	s.lock.ExclusiveUnlock()
	t4 := time.Now()
	if traced {
		s.tracer.Emit(obs.Event{Name: "apply", Time: t3, Dur: t4.Sub(t3),
			Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span,
			Attrs: []obs.Attr{obs.A("seq", seq)}})
	}

	if applyErr != nil {
		// The entry is (or will be) on disk but memory was not
		// updated: log and memory disagree. This is a bug in the
		// update type; refuse further work.
		err := fmt.Errorf("core: update applied to log but failed in memory (Verify/Apply contract broken): %w", applyErr)
		s.poison(err)
		return err
	}

	commitDur := t3.Sub(t2)
	if wait != nil {
		if err := wait(); err != nil {
			s.poison(err)
			return err
		}
		if sharded {
			tSync := time.Now()
			commitDur += tSync.Sub(t4)
			if traced {
				s.tracer.Emit(obs.Event{Name: "wal.sync", Time: t4, Dur: tSync.Sub(t4),
					Trace: uctx.Trace, Span: obs.NewSpanID(), Parent: uctx.Span,
					Attrs: []obs.Attr{obs.A("seq", seq)}})
			}
			// This sequence — and by the barrier's in-order rule every
			// sequence below it — is durable: publish the queued views
			// it covers before acknowledging the caller, preserving
			// read-your-writes for lock-free enquiries.
			s.publishDurable(sl.DurableSeq())
		}
	}

	s.recordUpdate(t0, t1.Sub(t0), t2.Sub(t1), commitDur, t4.Sub(t3), seq, payloadBytes, upd)
	s.maybeAutoCheckpoint()
	return nil
}

// queuePublish captures the just-applied root's new version under the
// exclusive lock and queues it for publication once its sequence is
// acknowledged durable — the sharded commit path's deferred publication
// point. No-op for unversioned roots.
func (s *Store) queuePublish(seq uint64) {
	if !s.versioned {
		return
	}
	vr, ok := s.root.(VersionedRoot)
	if !ok {
		return
	}
	view := vr.SnapshotView()
	s.pubMu.Lock()
	s.pendingPub = append(s.pendingPub, pendingPub{seq: seq, view: view})
	s.pubMu.Unlock()
}

// publishDurable publishes, in sequence order, every queued view whose
// sequence the durable frontier covers. Queue order is publication order:
// views are enqueued under the exclusive lock, so they are ascending, and
// pubMu serializes concurrent committers draining the queue after their
// barrier. The slice is shifted in place so the steady state allocates
// nothing.
func (s *Store) publishDurable(frontier uint64) {
	s.pubMu.Lock()
	n := 0
	for n < len(s.pendingPub) && s.pendingPub[n].seq <= frontier {
		p := s.pendingPub[n]
		s.vs.publish(p.view, p.seq, s.vm.published, s.vm.reclaimed)
		n++
	}
	if n > 0 {
		rem := copy(s.pendingPub, s.pendingPub[n:])
		for i := rem; i < len(s.pendingPub); i++ {
			s.pendingPub[i] = pendingPub{}
		}
		s.pendingPub = s.pendingPub[:rem]
	}
	s.pubMu.Unlock()
}

// payloadPool recycles the buffers updates are pickled into on their way to
// the log. Indirect ([]byte behind a pointer) so Put does not allocate.
var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// putPayloadBuf returns a pickled-payload buffer to the pool, unless it
// grew past what is worth keeping.
func putPayloadBuf(bufp *[]byte, payload []byte) {
	if cap(payload) > 1<<20 {
		return
	}
	*bufp = payload[:0]
	payloadPool.Put(bufp)
}

// applyCoarse is the E8 ablation: the entire update, disk write included,
// under the exclusive lock, so enquiries stall for the full 20 ms-class
// disk write rather than only the in-memory mutation.
func (s *Store) applyCoarse(u Update) error {
	s.lock.Exclusive()
	defer s.lock.ExclusiveUnlock()

	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return ErrClosed
	case s.poisoned != nil:
		err := s.poisoned
		s.mu.Unlock()
		return err
	}
	log := s.log
	s.mu.Unlock()

	t0 := time.Now()
	if err := u.Verify(s.root); err != nil {
		return err
	}
	t1 := time.Now()
	bufp := payloadPool.Get().(*[]byte)
	payload, err := pickle.AppendMarshal((*bufp)[:0], &logRecord{U: u})
	if err != nil {
		return fmt.Errorf("core: pickling update: %w", err)
	}
	payloadBytes := len(payload)
	t2 := time.Now()
	seq, err := log.Append(payload)
	putPayloadBuf(bufp, payload)
	if err != nil {
		s.poison(err)
		return err
	}
	t3 := time.Now()
	if err := u.Apply(s.root); err != nil {
		err = fmt.Errorf("core: update applied to log but failed in memory: %w", err)
		s.poison(err)
		return err
	}
	s.publish(seq)
	s.mu.Lock()
	s.applied = seq
	s.logEntries++
	s.mu.Unlock()
	t4 := time.Now()

	s.recordUpdate(t0, t1.Sub(t0), t2.Sub(t1), t3.Sub(t2), t4.Sub(t3), seq, payloadBytes, obs.Span{})
	s.maybeAutoCheckpoint()
	return nil
}

// ApplyBatch commits a batch of updates in one exclusive section:
// verify/pickle/enqueue/apply each in order, then wait for the last one's
// durability — one epoch barrier (or group-commit sync) covering the whole
// batch. The batch is NOT atomic: if update i fails to verify, updates
// [0, i) are already committed and the error is returned; callers needing
// all-or-nothing semantics must pre-validate. Unlike Apply, the exclusive
// lock is held for the whole loop, so locked enquiries are excluded for
// the batch's duration (lock-free snapshot enquiries proceed regardless).
// The crashtest harness uses batches to form deterministic multi-stream
// epochs; servers can use them to amortize lock traffic on bulk loads.
func (s *Store) ApplyBatch(us []Update) error {
	if len(us) == 0 {
		return nil
	}
	s.lock.Exclusive()
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		s.lock.ExclusiveUnlock()
		return ErrClosed
	case s.poisoned != nil:
		err := s.poisoned
		s.mu.Unlock()
		s.lock.ExclusiveUnlock()
		return err
	}
	log := s.log
	s.mu.Unlock()
	sl, sharded := log.(*wal.Sharded)

	t0 := time.Now()
	var wait func() error
	var lastSeq uint64
	applied := 0
	var batchErr error
	for _, u := range us {
		if err := u.Verify(s.root); err != nil {
			batchErr = err
			break
		}
		bufp := payloadPool.Get().(*[]byte)
		payload, err := pickle.AppendMarshal((*bufp)[:0], &logRecord{U: u})
		if err != nil {
			batchErr = fmt.Errorf("core: pickling update: %w", err)
			break
		}
		seq, w := log.AppendAsync(payload)
		putPayloadBuf(bufp, payload)
		if err := u.Apply(s.root); err != nil {
			err = fmt.Errorf("core: update applied to log but failed in memory (Verify/Apply contract broken): %w", err)
			s.poison(err)
			batchErr = err
			break
		}
		if sharded {
			s.queuePublish(seq)
		}
		s.mu.Lock()
		s.applied = seq
		s.logEntries++
		s.mu.Unlock()
		lastSeq, wait = seq, w
		applied++
	}
	if !sharded && applied > 0 {
		// Single-stream publication point, as in Apply: inside the
		// exclusive section, after the appends. The batch's entries sync
		// together below, so only the final state is published.
		s.publish(lastSeq)
	}
	s.lock.ExclusiveUnlock()

	// Even on an early error the applied prefix is enqueued and applied;
	// wait out its durability so the usual acked ⇒ durable contract holds
	// for every update this call reported nothing wrong about.
	if wait != nil {
		if err := wait(); err != nil {
			s.poison(err)
			if batchErr == nil {
				batchErr = err
			}
			return batchErr
		}
		if sharded {
			s.publishDurable(sl.DurableSeq())
		}
	}
	if applied > 0 {
		dur := time.Since(t0)
		s.ctr.updates.Add(uint64(applied))
		s.recordStats(func(st *Stats) {
			st.Updates += uint64(applied)
			st.AppliedSeq = lastSeq
		})
		obs.Emit(s.tracer, obs.Event{Name: "update.batch", Time: t0, Dur: dur, Attrs: []obs.Attr{
			obs.A("updates", applied), obs.A("last_seq", lastSeq),
		}})
	}
	if batchErr != nil {
		return batchErr
	}
	s.maybeAutoCheckpoint()
	return nil
}

func (s *Store) poison(err error) {
	s.mu.Lock()
	if s.poisoned == nil {
		s.poisoned = err
	}
	s.mu.Unlock()
}

// Err reports the error that poisoned the store, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poisoned
}

// maybeAutoCheckpoint triggers a checkpoint when an update left the log
// past its configured thresholds. The updating goroutine only checks
// counters: the checkpoint itself runs on a background goroutine, so the
// update that crossed the threshold does not pay the checkpoint's latency.
// Single-flight (checkpointing); Close waits for an in-flight one.
func (s *Store) maybeAutoCheckpoint() {
	if s.cfg.MaxLogBytes <= 0 && s.cfg.MaxLogEntries <= 0 {
		return
	}
	if !s.autoCheckpointDue() {
		return
	}
	if !s.checkpointing.CompareAndSwap(false, true) {
		return // one at a time
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.checkpointing.Store(false)
		return
	}
	s.cpWG.Add(1) // under mu with closed checked, so Close cannot be Waiting yet
	s.mu.Unlock()
	go func() {
		defer s.checkpointing.Store(false)
		defer s.cpWG.Done()
		// Re-check: a manual or timer checkpoint may have emptied the log
		// while this goroutine was starting. Best effort — a failure
		// leaves the old version current and surfaces through
		// core_checkpoint_errors and LastCheckpointErr.
		if s.autoCheckpointDue() {
			_ = s.Checkpoint()
		}
	}()
}

// autoCheckpointDue reports whether the log has outgrown the auto-checkpoint
// thresholds.
func (s *Store) autoCheckpointDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil || s.closed || s.poisoned != nil {
		return false
	}
	if s.cfg.MaxLogBytes > 0 && s.log.Size() > s.cfg.MaxLogBytes {
		return true
	}
	if s.cfg.MaxLogEntries > 0 && s.logEntries > s.cfg.MaxLogEntries {
		return true
	}
	return false
}

// Checkpoint records the database on disk and starts an empty log (§3).
// With a DeltaRoot (the default for the nameserver and replica roots) the
// checkpoint file holds only the subtrees changed since the previous
// checkpoint, chained onto the last full image; a full rewrite (compaction)
// runs automatically once the chain crosses Config.MaxDeltaChain or
// Config.MaxDeltaRatio. By default updates are excluded only while the
// root is pickled in memory; every disk transfer happens while updates
// keep committing (see checkpointNonBlocking). With
// Config.BlockingCheckpoint — or UnsafeNoSync, which has no commit point
// for the mirror window to preserve — the paper's fully-locked,
// full-image variant runs instead. Enquiries proceed either way.
// Concurrent Checkpoint calls serialize; each performs a full switch.
func (s *Store) Checkpoint() error {
	s.cpMu.Lock()
	err := s.checkpointLocked(false)
	s.cpMu.Unlock()
	s.noteCheckpointErr(err)
	if err == nil {
		s.maybeCompact()
	}
	return err
}

// checkpointLocked runs one checkpoint switch; the caller holds cpMu.
// forceFull makes a delta-capable store write a full image (compaction).
func (s *Store) checkpointLocked(forceFull bool) error {
	s.cpInflight.Set(1)
	defer s.cpInflight.Set(0)
	if s.cfg.BlockingCheckpoint || s.cfg.UnsafeNoSync {
		return s.checkpointBlocking()
	}
	return s.checkpointNonBlocking(forceFull)
}

// noteCheckpointErr records a checkpoint outcome where LastCheckpointErr,
// the error counter and the tracer surface it.
func (s *Store) noteCheckpointErr(err error) {
	s.mu.Lock()
	s.lastCPErr = err
	s.mu.Unlock()
	if err != nil && !errors.Is(err, ErrClosed) {
		s.ctr.cpErrors.Inc()
		obs.Emit(s.tracer, obs.Event{Name: "checkpoint.error", Err: err})
	}
}

// compactionDue reports whether the delta chain has outgrown its bounds
// and should be rewritten into a fresh full image.
func (s *Store) compactionDue() bool {
	s.mu.Lock()
	st := s.cpState
	unhealthy := s.closed || s.poisoned != nil
	s.mu.Unlock()
	if unhealthy || st.Version <= st.Base {
		return false
	}
	if int(st.Version-st.Base) >= s.maxDeltaChain() {
		return true
	}
	bb := s.baseBytes.Load()
	return bb > 0 && float64(s.deltaBytes.Load()) > s.maxDeltaRatio()*float64(bb)
}

// maybeCompact rewrites the delta chain into a fresh full image when it
// has outgrown its bounds — on a single-flight background goroutine, so
// the checkpoint that tripped the threshold doesn't absorb a full-root
// write, or synchronously under Config.SerialCompaction.
func (s *Store) maybeCompact() {
	if !s.compactionDue() {
		return
	}
	if s.cfg.SerialCompaction {
		s.cpMu.Lock()
		err := s.compactLocked()
		s.cpMu.Unlock()
		s.noteCheckpointErr(err)
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return // one at a time
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.compacting.Store(false)
		return
	}
	s.cpWG.Add(1) // under mu with closed checked, so Close cannot be Waiting yet
	s.mu.Unlock()
	go func() {
		defer s.compacting.Store(false)
		defer s.cpWG.Done()
		s.cpMu.Lock()
		err := s.compactLocked()
		s.cpMu.Unlock()
		s.noteCheckpointErr(err)
	}()
}

// compactLocked re-checks the thresholds under cpMu (a concurrent manual
// Checkpoint may have compacted already) and runs the full switch.
func (s *Store) compactLocked() error {
	if !s.compactionDue() {
		return nil
	}
	s.mu.Lock()
	chainLen := int64(1 + s.cpState.Version - s.cpState.Base)
	s.mu.Unlock()
	obs.Emit(s.tracer, obs.Event{Name: "checkpoint.compact", Attrs: []obs.Attr{
		obs.A("chain_len", chainLen),
		obs.A("delta_bytes", s.deltaBytes.Load()),
		obs.A("base_bytes", s.baseBytes.Load()),
	}})
	err := s.checkpointLocked(true)
	if err == nil {
		s.ctr.compactions.Inc()
		s.recordStats(func(st *Stats) { st.Compactions++ })
	}
	return err
}

// LastCheckpointErr reports the outcome of the most recent checkpoint
// attempt: nil after a success (or before any attempt). Auto- and
// timer-triggered checkpoints run off the update path, so this accessor —
// with the core_checkpoint_errors counter and the checkpoint.error tracer
// event — is how their failures surface.
func (s *Store) LastCheckpointErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCPErr
}

// CheckpointStage identifies a point inside the non-blocking checkpoint at
// which the store calls the hook installed by SetCheckpointStageHook. The
// crashtest harness uses the stages to apply updates deterministically
// inside the mirror window, so its crash-point sweep covers
// concurrent-with-checkpoint commits without racing goroutines.
type CheckpointStage string

const (
	// StageMirrorOpen: the update lock has been released; appends commit
	// to the old log and are buffered for the new one. The checkpoint
	// file has not been written.
	StageMirrorOpen CheckpointStage = "mirror-open"
	// StageFileWritten: the checkpoint file and the new log exist and the
	// mirror is durably caught up; the version has not flipped.
	StageFileWritten CheckpointStage = "file-written"
	// StageFlipped: newversion is durably installed (the switch is
	// committed) but the WAL still appends to the old file, dual-writing
	// the new one.
	StageFlipped CheckpointStage = "flipped"
)

// SetCheckpointStageHook installs fn, called synchronously on the
// checkpointing goroutine at each stage of every non-blocking checkpoint
// (nil uninstalls). Test instrumentation; the hook may Apply updates but
// must not call Checkpoint, Close or History.
func (s *Store) SetCheckpointStageHook(fn func(CheckpointStage)) {
	s.mu.Lock()
	s.cpHook = fn
	s.mu.Unlock()
}

func (s *Store) stageHook(stage CheckpointStage) {
	s.mu.Lock()
	fn := s.cpHook
	s.mu.Unlock()
	if fn != nil {
		fn(stage)
	}
}

// checkpointNonBlocking is the mirror-window checkpoint:
//
//  1. Under the update lock: flush the group-commit pipeline (every
//     applied update becomes durable in the old log), record nextSeq,
//     pickle the root into a pooled in-memory buffer — the only disk-free,
//     CPU-bound work — and open the WAL's mirror window. Release the lock;
//     updates commit normally from here on, to the old log, with each
//     frame also buffered for the new one.
//  2. In the background: stream the buffered checkpoint to disk and sync
//     it, create the new log file, attach it to the mirror window and
//     drain the mirrored tail into it. From the attach on, every flush
//     writes and syncs both logs before acknowledging, so at every
//     instant the new log durably holds every acknowledged entry with
//     seq >= nextSeq. Then commit the switch (newversion durable) and
//     install the version file.
//  3. A brief mu-only critical section retargets the WAL to the new file
//     and swaps the checkpoint state; retention cleanup runs last, after
//     the old file handle is closed.
//
// Crash safety at every op: before the newversion commit, recovery
// restores the old checkpoint + old log, which received every
// acknowledged update throughout (it stays the commit point); the debris
// of the new version is cleared. After the commit, recovery restores the
// new checkpoint + new log, which the dual-sync rule has kept durably
// complete up to every acknowledgement. The crashtest overlap sweep
// (cmd/crashtest -overlap) proves this at every faultfs op index.
//
// With a DeltaRoot and a pinned previous view, step 1's pickle produces a
// delta — the diff of the pinned snapshot against the previous
// checkpoint's — and step 2 writes it as checkpointN.d, chaining onto the
// previous version. Everything else (mirror window, commit point,
// retention) is identical; a delta that would rival the base image's size
// is discarded and the full root pickled instead. forceFull is the
// compactor's handle: it collapses the chain into a fresh full image.
func (s *Store) checkpointNonBlocking(forceFull bool) error {
	s.lock.UpdateUrgent()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.lock.UpdateUnlock()
		return ErrClosed
	}
	if s.poisoned != nil {
		err := s.poisoned
		s.mu.Unlock()
		s.lock.UpdateUnlock()
		return err
	}
	log := s.log
	cur := s.cpState
	s.mu.Unlock()

	cpStart := time.Now()
	if err := log.Flush(); err != nil {
		s.poisonUnlessClosed(err)
		s.lock.UpdateUnlock()
		return err
	}
	if sl, ok := log.(*wal.Sharded); ok {
		// The flush sealed an epoch covering every applied update, but
		// their committers may still be blocked on the barrier with their
		// publications queued. Drain the queue here — we hold the update
		// lock, so applied is stable — or the pinned snapshot below would
		// sit behind applied and force the locked-pickle fallback.
		s.publishDurable(sl.DurableSeq())
	}
	s.mu.Lock()
	nextSeq := s.applied + 1
	s.mu.Unlock()
	obs.Emit(s.tracer, obs.Event{Name: "checkpoint.start", Attrs: []obs.Attr{
		obs.A("version", cur.Version), obs.A("next_seq", nextSeq), obs.A("blocking", false),
	}})

	// Pickle the root in memory. With a versioned root, the lock is held
	// only long enough to pin the current published version — whose seq
	// is exactly applied, since appliers need the update lock we hold —
	// and the pickle itself runs after the lock is released, against the
	// immutable snapshot, concurrently with committing updates. With an
	// unversioned root the pickle is the one phase that excludes updates.
	p0 := time.Now()
	bufp := cpBufPool.Get().(*[]byte)
	sw := &sliceWriter{buf: (*bufp)[:0]}
	var perr error
	var snap *Snapshot
	if s.versioned {
		snap, perr = s.SnapshotAt()
		if perr == nil && snap.Seq() != nextSeq-1 {
			// Cannot happen while the update lock serializes applies;
			// fall back to the locked pickle rather than write a torn
			// checkpoint if the invariant is ever broken.
			snap.Release()
			snap = nil
		}
	}
	if snap == nil && perr == nil {
		perr = pickle.Write(sw, &header{NextSeq: nextSeq, Root: s.root})
	}
	buf := sw.buf
	pickleTime := time.Since(p0)
	if perr == nil {
		perr = log.BeginMirror()
	}
	stall := time.Since(cpStart)
	s.lock.UpdateUnlock()
	s.hist.cpStall.ObserveDuration(stall)
	if perr != nil {
		if snap != nil {
			snap.Release()
		}
		putCPBuf(bufp, buf)
		return perr
	}
	s.stageHook(StageMirrorOpen)

	// Background from here: updates keep committing to the old log while
	// the checkpoint goes to disk. abort undoes the window, leaving the
	// old version current and the store healthy.
	next := cur.Version + 1
	abort := func(err error) error {
		log.AbortMirror()
		checkpoint.Abort(s.cfg.FS, next)
		return err
	}
	var isDelta bool
	var subtrees int
	var curView any
	if snap != nil {
		ps := time.Now()
		curView = snap.Root()
		if prevView := s.cpPrevView; prevView != nil && !forceFull && !s.cfg.FullCheckpoints {
			if dr, ok := curView.(DeltaRoot); ok {
				delta, derr := dr.DeltaSince(prevView)
				if derr == nil {
					dh := &deltaHeader{
						Version: next, Parent: cur.Version,
						FromSeq: s.cpPrevSeq, NextSeq: nextSeq,
						Subtrees: deltaOps(delta), Delta: delta,
					}
					if perr = pickle.Write(sw, dh); perr == nil {
						isDelta = true
						subtrees = dh.Subtrees
					}
				}
				if !isDelta {
					// A failed diff or pickle is not fatal — fall back to
					// the full image this checkpoint would otherwise be.
					sw.buf = sw.buf[:0]
					perr = nil
				}
			}
		}
		if isDelta {
			// Size guard: a delta rivaling the base image saves nothing
			// and still lengthens the chain; write a fresh full image.
			if bb := s.baseBytes.Load(); bb <= 0 || float64(len(sw.buf)) >= s.maxDeltaRatio()*float64(bb) {
				sw.buf = sw.buf[:0]
				isDelta = false
			}
		}
		if !isDelta {
			perr = pickle.Write(sw, &header{NextSeq: nextSeq, Root: curView})
		}
		snap.Release()
		buf = sw.buf
		pickleTime += time.Since(ps)
		if perr != nil {
			putCPBuf(bufp, buf)
			return abort(perr)
		}
	}
	cpBytes := int64(len(buf))
	writeBody := func(w io.Writer) error {
		_, werr := w.Write(buf)
		return werr
	}
	ioStart := time.Now()
	var prepErr error
	if isDelta {
		_, prepErr = checkpoint.PrepareDelta(s.cfg.FS, cur, writeBody, s.cpOpts())
	} else {
		_, prepErr = checkpoint.Prepare(s.cfg.FS, cur, writeBody, s.cpOpts())
	}
	if prepErr != nil {
		putCPBuf(bufp, buf)
		return abort(prepErr)
	}
	putCPBuf(bufp, buf)
	ioTime := time.Since(ioStart)

	switchStart := time.Now()
	if sl, ok := log.(*wal.Sharded); ok {
		files, err := checkpoint.CreateShardLogFiles(s.cfg.FS, next, sl.Shards())
		if err != nil {
			return abort(err)
		}
		if err := sl.AttachMirrorFiles(files); err != nil {
			for _, f := range files {
				f.Close()
			}
			return abort(err)
		}
	} else {
		lf, err := checkpoint.CreateLogFile(s.cfg.FS, next)
		if err != nil {
			return abort(err)
		}
		if err := log.(*wal.Log).AttachMirrorFile(lf); err != nil {
			lf.Close()
			return abort(err)
		}
	}
	if err := log.SyncMirror(); err != nil {
		// A failed mirror write has already poisoned the WAL (appends
		// see the failure); record it at the store too.
		s.poisonUnlessClosed(err)
		return abort(err)
	}
	s.stageHook(StageFileWritten)

	// The commit point: newversion durably names the new version.
	if err := checkpoint.CommitNewVersion(s.cfg.FS, next); err != nil {
		return abort(err)
	}
	if err := checkpoint.InstallVersion(s.cfg.FS); err != nil {
		// The switch is committed on disk (a restart recovers the new
		// version — complete, thanks to the dual-sync rule) but this
		// process cannot finish it; running on would diverge from what
		// recovery restores.
		s.poisonUnlessClosed(err)
		log.AbortMirror()
		return err
	}
	s.stageHook(StageFlipped)

	// Brief critical section: retarget the log to its new file and swap
	// the checkpoint state. The old file handle is closed inside.
	mirrored, err := log.FinishMirror(checkpoint.LogName(next))
	if err != nil {
		s.poisonUnlessClosed(err)
		return err
	}
	s.ctr.cpMirrored.Add(uint64(mirrored))
	newBase := next
	if isDelta {
		newBase = cur.Base
	}
	s.mu.Lock()
	// Provisional state until Finish reports retention; logEntries counts
	// what the new log holds — exactly the window's mirrored entries plus
	// whatever commits from now on.
	s.cpState = checkpoint.State{Version: next, Base: newBase, Retained: cur.Retained}
	s.logEntries = int64(s.applied - (nextSeq - 1))
	s.mu.Unlock()

	// Retention cleanup last — after the WAL stopped touching the old
	// file. A crash here leaves debris recovery clears the same way.
	newState, err := checkpoint.Finish(s.cfg.FS, next, s.cpOpts())
	if err != nil {
		return err // the switch itself is complete; the store runs on
	}
	s.mu.Lock()
	s.cpState = newState
	s.mu.Unlock()
	checkpoint.ObserveSwitch(s.cpOpts(), cpStart)
	switchTime := time.Since(switchStart)

	// Chain accounting and the next delta's base. curView is the pinned
	// published view this checkpoint recorded — exactly what on-disk
	// version `next` reconstructs to — so it is the diff base for the
	// next checkpoint. (All under cpMu, which the caller holds.)
	if isDelta {
		s.deltaBytes.Add(cpBytes)
		s.ctr.deltaCheckpoints.Inc()
	} else {
		s.baseBytes.Store(cpBytes)
		s.deltaBytes.Store(0)
	}
	if curView != nil && !s.cfg.FullCheckpoints {
		if _, ok := curView.(DeltaRoot); ok {
			s.cpPrevView = curView
			s.cpPrevSeq = nextSeq
		}
	}

	s.recordCheckpointStats(stall, pickleTime, ioTime, switchTime)
	s.recordStats(func(st *Stats) {
		st.LastCheckpointBytes = cpBytes
		if isDelta {
			st.DeltaCheckpoints++
		}
	})
	obs.Emit(s.tracer, obs.Event{Name: "checkpoint.finish", Dur: time.Since(cpStart), Attrs: []obs.Attr{
		obs.A("version", next),
		obs.A("delta", isDelta),
		obs.A("bytes", cpBytes),
		obs.A("subtrees", subtrees),
		obs.A("stall", stall.Round(time.Microsecond)),
		obs.A("pickle", pickleTime.Round(time.Microsecond)),
		obs.A("io", ioTime.Round(time.Microsecond)),
		obs.A("switch", switchTime.Round(time.Microsecond)),
		obs.A("mirrored", mirrored),
	}})
	return nil
}

// checkpointBlocking is the paper's original §3 checkpoint: the update lock
// is held across every disk transfer. Kept as the BlockingCheckpoint
// ablation and the UnsafeNoSync fallback.
func (s *Store) checkpointBlocking() error {
	s.lock.UpdateUrgent()
	defer s.lock.UpdateUnlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.poisoned != nil {
		err := s.poisoned
		s.mu.Unlock()
		return err
	}
	oldLog := s.log
	cur := s.cpState
	nextSeq := s.applied + 1
	s.mu.Unlock()

	obs.Emit(s.tracer, obs.Event{Name: "checkpoint.start", Attrs: []obs.Attr{
		obs.A("version", cur.Version), obs.A("next_seq", nextSeq), obs.A("blocking", true),
	}})
	cpStart := time.Now()

	// Make sure every applied update's entry is durable in the old log
	// before the new checkpoint supersedes it (group-commit entries may
	// still be in flight). Close flushes.
	if err := oldLog.Close(); err != nil {
		s.poison(err)
		return err
	}

	// reopenOld puts the old version's log back in service after a failed
	// switch step; the old version is still current.
	reopenOld := func(err error) error {
		obs.Emit(s.tracer, obs.Event{Name: "checkpoint.finish", Dur: time.Since(cpStart), Err: err})
		reopened, rerr := s.openLog(cur.LogName(), nextSeq)
		if rerr != nil {
			s.poison(rerr)
			return fmt.Errorf("core: checkpoint failed (%v) and old log could not be reopened: %w", err, rerr)
		}
		s.mu.Lock()
		s.log = reopened
		s.mu.Unlock()
		return err
	}

	// Phase accounting: pickle is the CPU time converting the root to
	// bytes, io is the checkpoint file's buffered writes plus its sync,
	// switch is the version-switch protocol (log creation, newversion
	// commit, install, cleanup).
	var pickleTime time.Duration
	var cpBytes int64
	prepStart := time.Now()
	next, err := checkpoint.Prepare(s.cfg.FS, cur, func(w io.Writer) error {
		p0 := time.Now()
		cw := &countingWriter{w: w}
		werr := pickle.Write(cw, &header{NextSeq: nextSeq, Root: s.root})
		pickleTime = time.Since(p0) - cw.ioTime
		cpBytes = cw.n
		return werr
	}, s.cpOpts())
	if err != nil {
		checkpoint.Abort(s.cfg.FS, cur.Version+1)
		return reopenOld(err)
	}
	ioTime := time.Since(prepStart) - pickleTime

	switchStart := time.Now()
	if n := s.logShards(); n > 1 {
		var files []vfs.File
		files, err = checkpoint.CreateShardLogFiles(s.cfg.FS, next, n)
		for _, f := range files {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	} else {
		var lf vfs.File
		lf, err = checkpoint.CreateLogFile(s.cfg.FS, next)
		if err == nil {
			err = lf.Close()
		}
	}
	if err == nil {
		err = checkpoint.CommitNewVersion(s.cfg.FS, next)
	}
	if err != nil {
		checkpoint.Abort(s.cfg.FS, next)
		return reopenOld(err)
	}
	if err := checkpoint.InstallVersion(s.cfg.FS); err != nil {
		// newversion is durable: recovery would finish this switch, so
		// reopening the old log would run on a superseded version.
		s.poison(err)
		return err
	}
	newState, err := checkpoint.Finish(s.cfg.FS, next, s.cpOpts())
	if err != nil {
		s.poison(err)
		return err
	}
	checkpoint.ObserveSwitch(s.cpOpts(), cpStart)
	switchTime := time.Since(switchStart)

	newLog, err := s.openLog(newState.LogName(), nextSeq)
	if err != nil {
		s.poison(err)
		return err
	}
	s.mu.Lock()
	s.log = newLog
	s.cpState = newState
	s.logEntries = 0
	s.mu.Unlock()
	// The blocking path always writes a full image (see Config
	// .FullCheckpoints): the chain collapses and any pinned delta base is
	// stale. (Under cpMu, which the caller holds.)
	s.baseBytes.Store(cpBytes)
	s.deltaBytes.Store(0)
	s.cpPrevView, s.cpPrevSeq = nil, 0

	stall := time.Since(cpStart)
	s.hist.cpStall.ObserveDuration(stall)
	s.recordCheckpointStats(stall, pickleTime, ioTime, switchTime)
	s.recordStats(func(st *Stats) { st.LastCheckpointBytes = cpBytes })
	obs.Emit(s.tracer, obs.Event{Name: "checkpoint.finish", Dur: time.Since(cpStart), Attrs: []obs.Attr{
		obs.A("version", newState.Version),
		obs.A("pickle", pickleTime.Round(time.Microsecond)),
		obs.A("io", ioTime.Round(time.Microsecond)),
		obs.A("switch", switchTime.Round(time.Microsecond)),
	}})
	return nil
}

// recordCheckpointStats folds one successful checkpoint's phase times into
// the histograms, counters and sums.
func (s *Store) recordCheckpointStats(stall, pickleTime, ioTime, switchTime time.Duration) {
	s.hist.cpPickle.ObserveDuration(pickleTime)
	s.hist.cpIO.ObserveDuration(ioTime)
	s.hist.cpSwitch.ObserveDuration(switchTime)
	s.ctr.checkpoints.Inc()
	s.recordStats(func(st *Stats) {
		st.Checkpoints++
		st.CheckpointPickleTime += pickleTime
		st.CheckpointIOTime += ioTime
		st.CheckpointStallTime += stall
		st.CheckpointSwitchTime += switchTime
	})
}

func (s *Store) poisonUnlessClosed(err error) {
	if errors.Is(err, ErrClosed) || errors.Is(err, wal.ErrClosed) {
		return
	}
	s.poison(err)
}

// cpBufPool recycles the buffer non-blocking checkpoints pickle the root
// into: one root-sized buffer survives between checkpoints instead of being
// reallocated (and page-faulted in) every time.
var cpBufPool = sync.Pool{New: func() any { return new([]byte) }}

func putCPBuf(bufp *[]byte, buf []byte) {
	*bufp = buf[:0]
	cpBufPool.Put(bufp)
}

// sliceWriter appends everything written to an in-memory buffer. The
// checkpoint pickler streams through it (the encoder flushes every few KB),
// so the pickled root lands in one growing buffer without an extra
// encoder-side copy.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// countingWriter tracks the bytes written and the time spent inside the
// underlying writer, to separate pickling CPU from disk time in checkpoint
// instrumentation and to size checkpoint images.
type countingWriter struct {
	w      io.Writer
	n      int64
	ioTime time.Duration
}

func (c *countingWriter) Write(p []byte) (int, error) {
	t := time.Now()
	n, err := c.w.Write(p)
	c.ioTime += time.Since(t)
	c.n += int64(n)
	return n, err
}

// countingReader counts the bytes the decoder consumed, sizing checkpoint
// files on the restart path without an extra stat.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// CheckpointEvery starts a background goroutine checkpointing at the given
// interval — the paper's "simple scheme of making a checkpoint each night".
// It stops when the store is closed. Failures surface through
// LastCheckpointErr, the core_checkpoint_errors counter and the
// checkpoint.error tracer event.
func (s *Store) CheckpointEvery(interval time.Duration) {
	s.mu.Lock()
	if s.stopTimer != nil || s.closed {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	s.stopTimer = stop
	s.mu.Unlock()

	s.timerWG.Add(1)
	go func() {
		defer s.timerWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = s.Checkpoint()
			}
		}
	}()
}

// cpOpts derives the checkpoint-protocol options from the config.
func (s *Store) cpOpts() checkpoint.Options {
	return checkpoint.Options{Retain: s.cfg.Retain, ArchiveLogs: s.cfg.ArchiveLogs, Obs: s.cfg.Obs}
}

// History replays the database's audit trail — every archived log (with
// Config.ArchiveLogs), every retained log, and the current log, in
// sequence order — calling fn for each update ever committed that is still
// on disk. It holds the update lock, so updates are excluded while the
// trail is read but enquiries proceed. The trail starts at the oldest log
// still present; sequence continuity across files is verified.
func (s *Store) History(fn func(seq uint64, u Update) error) error {
	// cpMu first (the same order Checkpoint uses): a background
	// checkpoint renames and deletes log files; the trail must not be
	// read mid-switch.
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	s.lock.UpdateUrgent()
	defer s.lock.UpdateUnlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	st := s.cpState
	log := s.log
	s.mu.Unlock()

	// Bring the current log file in line with memory (group-commit
	// entries may still be buffered).
	if err := log.Flush(); err != nil {
		return err
	}

	var files []string
	archived, err := checkpoint.ArchivedLogs(s.cfg.FS)
	if err != nil {
		return err
	}
	for _, v := range archived {
		files = append(files, checkpoint.ArchiveLogName(v))
	}
	for _, v := range st.Retained {
		files = append(files, checkpoint.LogName(v))
	}
	files = append(files, st.LogName())

	expect := uint64(0)
	for _, name := range files {
		first, ok, err := wal.FirstSeqSharded(s.cfg.FS, name)
		if err != nil {
			return err
		}
		if !ok {
			continue // empty log (no updates in that era)
		}
		if expect != 0 && first != expect {
			return fmt.Errorf("core: audit trail gap: %s starts at sequence %d, expected %d", name, first, expect)
		}
		res, err := wal.ReplayShardedPipelined(s.cfg.FS, name, first,
			wal.ReplayOptions{SkipDamaged: s.cfg.SkipDamagedLogEntries}, s.replayWorkers(),
			func(seq uint64, payload []byte) (any, error) {
				var rec logRecord
				if err := pickle.Unmarshal(payload, &rec); err != nil {
					return nil, fmt.Errorf("core: audit entry %d undecodable: %w", seq, err)
				}
				return rec.U, nil
			},
			func(seq uint64, v any) error {
				u, _ := v.(Update)
				return fn(seq, u)
			})
		if err != nil {
			return err
		}
		expect = res.NextSeq
	}
	return nil
}

// Stats returns a snapshot of the instrumentation counters, including the
// phase latency distributions.
func (s *Store) Stats() Stats {
	s.statMu.Lock()
	st := s.stats
	s.statMu.Unlock()
	st.Enquiries = s.enquiries.Load()
	st.VerifyDist = s.hist.verify.Snapshot()
	st.PickleDist = s.hist.pickle.Snapshot()
	st.CommitDist = s.hist.commit.Snapshot()
	st.ApplyDist = s.hist.apply.Snapshot()
	st.CheckpointPickleDist = s.hist.cpPickle.Snapshot()
	st.CheckpointIODist = s.hist.cpIO.Snapshot()
	st.CheckpointStallDist = s.hist.cpStall.Snapshot()
	st.CheckpointSwitchDist = s.hist.cpSwitch.Snapshot()
	s.mu.Lock()
	if s.log != nil {
		st.LogBytes = s.log.Size()
	}
	st.LogEntries = s.logEntries
	st.ChainLength = int(1 + s.cpState.Version - s.cpState.Base)
	s.mu.Unlock()
	return st
}

// Version reports the current checkpoint version.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cpState.Version
}

// AppliedSeq reports the sequence number of the last applied update.
func (s *Store) AppliedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// DurableSeq reports the sequence number of the last update known durable
// on this store — the staleness bound a bounded-staleness read may quote.
// On a versioned store this is the published version's sequence (deferred
// publication guarantees published ≤ durable frontier); otherwise it falls
// back to the applied sequence, which the synchronous commit path only
// advances after the log sync.
func (s *Store) DurableSeq() uint64 {
	if s.versioned {
		if v := s.vs.pub.Load(); v != nil {
			return v.seq
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Close flushes and closes the log. It does not checkpoint; call
// Checkpoint first if a fast next restart is wanted.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop := s.stopTimer
	log := s.log
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	s.timerWG.Wait()
	// Wait for an in-flight auto-checkpoint: it either completes its
	// switch or aborts against the closed flag before the log goes away.
	s.cpWG.Wait()
	if log != nil {
		return log.Close()
	}
	return nil
}

// walOpts derives the log options from the config.
func (s *Store) walOpts() wal.Options {
	return wal.Options{NoSync: s.cfg.UnsafeNoSync, Obs: s.cfg.Obs, Tracer: s.cfg.Tracer}
}

// logShards normalizes Config.LogShards: 0 and 1 both mean the paper's
// single stream.
func (s *Store) logShards() int {
	if s.cfg.LogShards > 1 {
		return s.cfg.LogShards
	}
	return 1
}

// openLog opens the store's redo log rooted at base — a plain single-stream
// wal.Log, or a wal.Sharded ticket-and-streams log when Config.LogShards
// asks for one. Both satisfy storeLog; the rest of the store branches only
// where the on-disk layout differs (checkpoint mirror attach, recovery).
func (s *Store) openLog(base string, nextSeq uint64) (storeLog, error) {
	if n := s.logShards(); n > 1 {
		return wal.OpenSharded(s.cfg.FS, base, n, nextSeq,
			wal.ShardedOptions{Options: s.walOpts(), SequentialSync: s.cfg.SerialLogSync})
	}
	return wal.Open(s.cfg.FS, base, nextSeq, s.walOpts())
}
