package sulock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// expectBlocked asserts that fn does not complete within a short window.
func expectBlocked(t *testing.T, what string, fn func()) (release func(wait time.Duration) bool) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	select {
	case <-done:
		t.Fatalf("%s did not block", what)
	case <-time.After(20 * time.Millisecond):
	}
	return func(wait time.Duration) bool {
		select {
		case <-done:
			return true
		case <-time.After(wait):
			return false
		}
	}
}

func TestSharedCompatibleWithShared(t *testing.T) {
	var l Lock
	l.Shared()
	done := make(chan struct{})
	go func() {
		l.Shared()
		l.SharedUnlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("second shared blocked")
	}
	l.SharedUnlock()
}

func TestSharedCompatibleWithUpdate(t *testing.T) {
	var l Lock
	l.Update()
	done := make(chan struct{})
	go func() {
		l.Shared()
		l.SharedUnlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("shared blocked by update — the matrix says compatible")
	}
	l.UpdateUnlock()
}

func TestUpdateConflictsWithUpdate(t *testing.T) {
	var l Lock
	l.Update()
	wait := expectBlocked(t, "second update", func() {
		l.Update()
		l.UpdateUnlock()
	})
	l.UpdateUnlock()
	if !wait(time.Second) {
		t.Fatal("second update never acquired after release")
	}
}

func TestExclusiveConflictsWithShared(t *testing.T) {
	var l Lock
	l.Update()
	l.Upgrade()
	wait := expectBlocked(t, "shared during exclusive", func() {
		l.Shared()
		l.SharedUnlock()
	})
	l.ExclusiveUnlock()
	if !wait(time.Second) {
		t.Fatal("shared never acquired after exclusive release")
	}
}

func TestUpgradeWaitsForReaders(t *testing.T) {
	var l Lock
	l.Shared()
	l.Update()
	wait := expectBlocked(t, "upgrade with reader present", func() {
		l.Upgrade()
		l.ExclusiveUnlock()
	})
	l.SharedUnlock()
	if !wait(time.Second) {
		t.Fatal("upgrade never completed after readers drained")
	}
}

func TestUpgradeBlocksNewReaders(t *testing.T) {
	// While an upgrade waits, new shared requests queue behind it: the
	// upgrade cannot be starved.
	var l Lock
	l.Shared()
	l.Update()

	upgraded := make(chan struct{})
	go func() {
		l.Upgrade()
		close(upgraded)
	}()
	time.Sleep(10 * time.Millisecond) // let Upgrade start waiting

	var newReaderRan atomic.Bool
	go func() {
		l.Shared()
		newReaderRan.Store(true)
		l.SharedUnlock()
	}()
	time.Sleep(10 * time.Millisecond)
	if newReaderRan.Load() {
		t.Fatal("new reader admitted while upgrade pending")
	}

	l.SharedUnlock() // drain the old reader
	select {
	case <-upgraded:
	case <-time.After(time.Second):
		t.Fatal("upgrade starved")
	}
	l.ExclusiveUnlock()
	// Now the new reader gets in.
	deadline := time.Now().Add(time.Second)
	for !newReaderRan.Load() {
		if time.Now().After(deadline) {
			t.Fatal("new reader never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEnquiriesProceedDuringCommitWindow(t *testing.T) {
	// The property the matrix exists for: while an updater holds (only)
	// the update lock — the paper's disk-write phase — enquiries run.
	var l Lock
	l.Update() // simulating: assembling + committing the log entry

	const n = 10
	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Shared()
			ran.Add(1)
			l.SharedUnlock()
		}()
	}
	wg.Wait()
	if ran.Load() != n {
		t.Fatalf("only %d/%d enquiries ran during update's disk phase", ran.Load(), n)
	}
	l.Upgrade()
	l.ExclusiveUnlock()
}

func TestMisuse(t *testing.T) {
	cases := []struct {
		name string
		fn   func(l *Lock)
	}{
		{"SharedUnlock without Shared", func(l *Lock) { l.SharedUnlock() }},
		{"UpdateUnlock without Update", func(l *Lock) { l.UpdateUnlock() }},
		{"Upgrade without Update", func(l *Lock) { l.Upgrade() }},
		{"ExclusiveUnlock without exclusive", func(l *Lock) { l.ExclusiveUnlock() }},
		{"UpdateUnlock after Upgrade", func(l *Lock) { l.Update(); l.Upgrade(); l.UpdateUnlock() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			var l Lock
			c.fn(&l)
		})
	}
}

func TestStress(t *testing.T) {
	// Many concurrent enquiries and updates; a counter protected by the
	// protocol must end exactly right, and no enquiry may observe a
	// half-applied update (odd intermediate state).
	var l Lock
	var value [2]int64 // an "invariant pair": both halves must match

	const updaters, updates = 4, 200
	var wg sync.WaitGroup
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < updates; i++ {
				l.Update()
				// (log write would happen here, readers active)
				l.Upgrade()
				value[0]++
				value[1]++
				l.ExclusiveUnlock()
			}
		}()
	}
	stop := make(chan struct{})
	var torn atomic.Int32
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Shared()
				if value[0] != value[1] {
					torn.Add(1)
				}
				l.SharedUnlock()
			}
		}()
	}
	// Wait for the updaters, then stop the readers.
	done := make(chan struct{})
	go func() {
		// updaters are the first `updaters` wg counts; simplest is a
		// separate waitgroup, but polling the final value suffices.
		for {
			l.Shared()
			v := value[0]
			l.SharedUnlock()
			if v == int64(updaters*updates) {
				close(done)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("updates did not complete")
	}
	close(stop)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads observed", torn.Load())
	}
	if value[0] != updaters*updates {
		t.Fatalf("final value %d", value[0])
	}
}

// TestUpdateUrgentNotStarvedByTightLoop: an UpdateUrgent waiter (a
// checkpoint) gets the lock after at most the holder's current critical
// section, even against a loop that reacquires update mode the instant it
// releases it — plain Update defers to urgent waiters instead of barging.
func TestUpdateUrgentNotStarvedByTightLoop(t *testing.T) {
	var l Lock
	var stop atomic.Bool
	loopDone := make(chan int)
	l.Update() // the loop starts as the holder, so the waiter truly waits
	go func() {
		n := 0
		for !stop.Load() {
			if n > 0 {
				l.Update()
			}
			n++
			l.UpdateUnlock()
		}
		loopDone <- n
	}()

	acquired := make(chan struct{})
	go func() {
		l.UpdateUrgent()
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("urgent update waiter starved by a reacquiring loop")
	}
	stop.Store(true)
	l.UpdateUnlock()
	if n := <-loopDone; n == 0 {
		t.Fatal("loop never ran")
	}
}
