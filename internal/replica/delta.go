// Incremental checkpoint support for replicated roots. The tree diff is
// delegated to nameserver.TreeDelta; the replication metadata rides along:
// the version vector and clock are tiny and travel as full copies, and the
// history — the one piece that can rival the tree in size — ships as the
// appended suffix plus a dropped-prefix count, reconstructed against the
// previous snapshot's history on apply.
package replica

import (
	"fmt"

	"smalldb/internal/nameserver"
	"smalldb/internal/pickle"
)

// RootDelta is the pickled difference between two snapshot views of a
// replicated Root.
type RootDelta struct {
	// Tree transforms the previous snapshot's tree into the current one.
	Tree *nameserver.TreeDelta
	// Vector and Clock are full copies; a version vector has one entry per
	// node, negligible next to the tree.
	Vector     map[string]uint64
	Clock      uint64
	HistoryCap int

	// History reconstruction: drop HistoryDropped entries from the front
	// of the previous history, then append HistoryAppended. When
	// HistoryFull is set the previous history is discarded and
	// HistoryAppended is the entire new history (the defensive fallback
	// when the append-only relation between the two histories cannot be
	// verified).
	HistoryDropped  int
	HistoryAppended []Entry
	HistoryFull     bool
}

func init() {
	pickle.Register(&RootDelta{})
}

// DeltaOps reports the number of changed subtrees, for checkpoint headers.
func (d *RootDelta) DeltaOps() int {
	if d.Tree == nil {
		return 0
	}
	return d.Tree.DeltaOps()
}

func vectorSum(v map[string]uint64) uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

func entrySame(a, b Entry) bool {
	return a.Origin == b.Origin && a.Seq == b.Seq && a.Stamp == b.Stamp
}

// DeltaSince implements the core store's DeltaRoot contract: it returns a
// *RootDelta transforming prev — an earlier SnapshotView of this root —
// into r's state.
//
// The history delta leans on an invariant of Replicated.Apply: each apply
// appends exactly one history entry and raises exactly one vector slot by
// one, so the number of entries appended between two snapshots equals the
// difference of their vector sums. That count splits the current history
// into a surviving prefix (a suffix of the previous history) and the
// appended suffix. The split is verified against the previous history's
// boundary entries; if anything disagrees (say the history was replaced
// wholesale by a restore), the delta falls back to carrying the full
// history.
func (r *Root) DeltaSince(prev any) (any, error) {
	p, ok := prev.(*Root)
	if !ok {
		return nil, fmt.Errorf("replica: delta base is %T, not *replica.Root", prev)
	}
	curTree, prevTree := r.Tree, p.Tree
	if curTree == nil {
		curTree = nameserver.NewTree()
	}
	if prevTree == nil {
		prevTree = nameserver.NewTree()
	}
	td, err := curTree.DeltaSince(prevTree)
	if err != nil {
		return nil, err
	}
	d := &RootDelta{
		Tree:       td.(*nameserver.TreeDelta),
		Vector:     copyVector(r.Vector),
		Clock:      r.Clock,
		HistoryCap: r.HistoryCap,
	}

	appended := vectorSum(r.Vector) - vectorSum(p.Vector)
	if appended >= uint64(len(r.History)) {
		// Every surviving entry is new since prev (or the relation is
		// unverifiable); ship the whole history and drop all of prev's.
		d.HistoryDropped = len(p.History)
		d.HistoryAppended = append([]Entry(nil), r.History...)
		if appended > uint64(len(r.History)) && len(r.History) > 0 {
			// Trim has discarded some of the appended entries; prev's
			// suffix is simply gone. Dropping all of prev and appending
			// all of cur still yields exactly cur's history.
			d.HistoryFull = true
		}
		return d, nil
	}

	survive := len(r.History) - int(appended)
	dropped := len(p.History) - survive
	verified := dropped >= 0
	if verified && survive > 0 {
		// The surviving prefix of cur must be the tail of prev. Entries
		// are immutable once appended, so checking both boundary entries
		// suffices to catch any wholesale replacement.
		verified = entrySame(r.History[0], p.History[dropped]) &&
			entrySame(r.History[survive-1], p.History[len(p.History)-1])
	}
	if !verified {
		d.HistoryFull = true
		d.HistoryAppended = append([]Entry(nil), r.History...)
		return d, nil
	}
	d.HistoryDropped = dropped
	d.HistoryAppended = append([]Entry(nil), r.History[survive:]...)
	return d, nil
}

// ApplyDelta implements the core store's DeltaRoot contract: apply a
// *RootDelta produced by DeltaSince. r must hold the previous snapshot's
// state (the recovery path guarantees this: the chain's base checkpoint
// loads first, then each delta applies in version order).
func (r *Root) ApplyDelta(delta any) error {
	d, ok := delta.(*RootDelta)
	if !ok {
		return fmt.Errorf("replica: delta is %T, not *replica.RootDelta", delta)
	}
	if r.Tree == nil {
		r.Tree = nameserver.NewTree()
	}
	if d.Tree != nil {
		if err := r.Tree.ApplyDelta(d.Tree); err != nil {
			return err
		}
	}
	r.Vector = copyVector(d.Vector)
	r.Clock = d.Clock
	r.HistoryCap = d.HistoryCap
	if d.HistoryFull {
		r.History = append([]Entry(nil), d.HistoryAppended...)
		return nil
	}
	drop := d.HistoryDropped
	if drop > len(r.History) {
		drop = len(r.History)
	}
	h := make([]Entry, 0, len(r.History)-drop+len(d.HistoryAppended))
	h = append(h, r.History[drop:]...)
	h = append(h, d.HistoryAppended...)
	r.History = h
	return nil
}
