package nameserver

import (
	"errors"
	"fmt"
	"time"

	"smalldb/internal/obs"
	"smalldb/internal/pickle"
)

// TraceService exposes a span collector over rpc, so a client that just
// issued a traced update (`nsctl trace`) can pull the server-side timeline
// for its trace ID without touching the debug HTTP endpoint. Register it
// as "Trace".
type TraceService struct {
	buf *obs.TraceBuffer
}

// NewTraceService wraps a trace buffer for remote access.
func NewTraceService(buf *obs.TraceBuffer) *TraceService { return &TraceService{buf: buf} }

// TraceArgs names one trace.
type TraceArgs struct{ Trace uint64 }

// TraceEvent is one span, flattened for the wire: times as UnixNano,
// durations as nanoseconds, attributes pre-rendered.
type TraceEvent struct {
	Name   string
	Start  int64
	DurNS  int64
	Trace  uint64
	Span   uint64
	Parent uint64
	Err    string
	Keys   []string
	Vals   []string
}

// TraceReply carries a trace's events, oldest first.
type TraceReply struct{ Events []TraceEvent }

// Get returns the collected events for one trace.
func (s *TraceService) Get(args *TraceArgs, reply *TraceReply) error {
	for _, e := range s.buf.Trace(obs.TraceID(args.Trace)) {
		te := TraceEvent{
			Name:   e.Name,
			Start:  e.Time.UnixNano(),
			DurNS:  int64(e.Dur),
			Trace:  uint64(e.Trace),
			Span:   uint64(e.Span),
			Parent: uint64(e.Parent),
		}
		if e.Err != nil {
			te.Err = e.Err.Error()
		}
		for _, a := range e.Attrs {
			te.Keys = append(te.Keys, a.Key)
			te.Vals = append(te.Vals, fmt.Sprint(a.Value))
		}
		reply.Events = append(reply.Events, te)
	}
	return nil
}

// Event reconstructs the obs.Event a TraceEvent was flattened from, for
// rendering with obs.WriteTimeline on the client side.
func (te TraceEvent) Event() obs.Event {
	e := obs.Event{
		Name:   te.Name,
		Time:   time.Unix(0, te.Start),
		Dur:    time.Duration(te.DurNS),
		Trace:  obs.TraceID(te.Trace),
		Span:   obs.SpanID(te.Span),
		Parent: obs.SpanID(te.Parent),
	}
	if te.Err != "" {
		e.Err = errors.New(te.Err)
	}
	for i, k := range te.Keys {
		if i < len(te.Vals) {
			e.Attrs = append(e.Attrs, obs.A(k, te.Vals[i]))
		}
	}
	return e
}

func init() {
	pickle.Register(&TraceArgs{})
	pickle.Register(&TraceReply{})
	pickle.Register(&TraceEvent{})
}
