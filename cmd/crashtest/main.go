// Command crashtest exhaustively replays a deterministic workload against
// every possible crash point and checks that recovery never loses an
// acknowledged update, never surfaces a half-applied one, and always lands
// exactly on the oracle state of the acknowledged prefix.
//
//	crashtest -seed 1 -ops 50              # full sweep, store and replica modes
//	crashtest -seed 1 -mode store -from 37 -to 37   # replay one reported point
//
// With -net, it runs the partition sweep instead: for every update index,
// a two-node replica pair is partitioned at that index, the acking node
// keeps committing through the partition (optionally power-failing at the
// heal point with -net-crash), the partition heals, and anti-entropy must
// converge both replicas with no acknowledged update lost — all under a
// lossy, jittery network profile (-drop, -jitter).
//
//	crashtest -net -seed 1 -ops 50                  # full partition sweep
//	crashtest -net -net-crash -from 12 -to 12       # replay one point, with crash
//
// With -net -nodes N (N > 2), the pair generalizes to an N-node
// quorum-commit replica group: each point partitions a seeded minority of
// non-primary members, the window must still be acknowledged at the write
// quorum (-quorum, default majority), -net-crash power-fails the point's
// rotating victim — the primary included — at the heal point, and after
// the heal every member must converge on the acked-prefix oracle.
//
//	crashtest -net -nodes 5 -quorum 3 -net-crash -seed 1 -ops 40
//
// A violation prints as a replayable (seed, point) pair; the exit status is
// 1 when any invariant broke, 2 on a setup error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"smalldb/internal/crashtest"
	"smalldb/internal/netsim"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "workload seed; (seed, point) replays any failure")
		ops       = flag.Int("ops", 50, "number of updates in the workload")
		cpEvery   = flag.Int("cp-every", 0, "checkpoint after every k updates (0 = ops/4+1, negative = never)")
		mode      = flag.String("mode", "store,replica", "comma-separated modes: store, replica")
		from      = flag.Int64("from", 0, "first point to replay")
		to        = flag.Int64("to", -1, "last point to replay (<= 0 = through the final op)")
		stride    = flag.Int64("stride", 1, "replay every stride-th point")
		shards    = flag.Int("shards", runtime.GOMAXPROCS(0), "points replayed in parallel")
		overlap   = flag.Bool("overlap", false, "commit updates inside each checkpoint's mirror window (sweeps the non-blocking checkpoint protocol)")
		nosync    = flag.Bool("nosync", false, "run without log syncs (store mode must then report violations; replica mode must still recover via its peer)")
		readers   = flag.Int("readers", 0, "concurrent snapshot readers validating lock-free enquiries against the oracle during every workload and catch-up")
		logShards = flag.Int("log-shards", 0, "split the redo log into this many parallel streams (0/1 = single stream); seals sync serially so the sweep stays deterministic")
		batch     = flag.Int("batch", 0, "group every k workload updates into one ApplyBatch — one epoch spanning several streams (0/1 = one update at a time)")
		fullCP    = flag.Bool("full-checkpoints", false, "write every checkpoint in full instead of the default incremental delta chain (the ablation sweep)")
		deltaCh   = flag.Int("delta-chain", 0, "compact the delta chain after this many deltas (0 = store default); small values put compactions inside the sweep")
		verbose   = flag.Bool("v", false, "log progress")

		net      = flag.Bool("net", false, "run the partition sweep instead of the crash-point sweep")
		netCrash = flag.Bool("net-crash", false, "with -net: also power-fail the acking node (or, with -nodes, the point's rotating victim) at the heal point")
		window   = flag.Int("window", 5, "with -net: updates committed during each partition")
		nodes    = flag.Int("nodes", 2, "with -net: replica group size; >2 sweeps an N-node quorum-commit group with a seeded minority partition per point")
		quorum   = flag.Int("quorum", 0, "with -net -nodes N: write quorum W (0 = majority)")
		drop     = flag.Float64("drop", 0.05, "with -net: per-message drop probability")
		jitter   = flag.Duration("jitter", 200*time.Microsecond, "with -net: max added delivery delay")
	)
	flag.Parse()

	if *net {
		os.Exit(runNet(*seed, *ops, *window, *nodes, *quorum, int(*from), int(*to), int(*stride), *shards, *netCrash, *drop, *jitter, *verbose))
	}

	violations := 0
	for _, m := range strings.Split(*mode, ",") {
		cfg := crashtest.Config{
			Seed:               *seed,
			Ops:                *ops,
			CheckpointEvery:    *cpEvery,
			Mode:               strings.TrimSpace(m),
			From:               *from,
			To:                 *to,
			Stride:             *stride,
			Shards:             *shards,
			OverlapCheckpoints: *overlap,
			UnsafeNoSync:       *nosync,
			Readers:            *readers,
			LogShards:          *logShards,
			Batch:              *batch,
			FullCheckpoints:    *fullCP,
			MaxDeltaChain:      *deltaCh,
		}
		if *verbose {
			cfg.Logf = log.Printf
		}
		res, err := crashtest.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(2)
		}
		fmt.Printf("mode=%-7s seed=%d ops=%d fs-ops=%d crash-points=%d violations=%d\n",
			res.Mode, res.Seed, res.Ops, res.TotalFSOps, res.Points, len(res.Violations))
		extra := ""
		if *nosync {
			extra = " -nosync"
		}
		if *overlap {
			extra += " -overlap"
		}
		if *cpEvery != 0 {
			extra += fmt.Sprintf(" -cp-every %d", *cpEvery)
		}
		if *readers != 0 {
			extra += fmt.Sprintf(" -readers %d", *readers)
		}
		if *logShards > 1 {
			extra += fmt.Sprintf(" -log-shards %d", *logShards)
		}
		if *batch > 1 {
			extra += fmt.Sprintf(" -batch %d", *batch)
		}
		if *fullCP {
			extra += " -full-checkpoints"
		}
		if *deltaCh > 0 {
			extra += fmt.Sprintf(" -delta-chain %d", *deltaCh)
		}
		for _, v := range res.Violations {
			fmt.Printf("VIOLATION %s\n", v)
			fmt.Printf("  replay: go run ./cmd/crashtest -seed %d -ops %d -mode %s -from %d -to %d%s\n",
				res.Seed, res.Ops, res.Mode, v.Point, v.Point, extra)
		}
		violations += len(res.Violations)
	}
	if violations > 0 {
		os.Exit(1)
	}
}

func runNet(seed int64, ops, window, nodes, quorum, from, to, stride, shards int, crash bool, drop float64, jitter time.Duration, verbose bool) int {
	cfg := crashtest.NetConfig{
		Seed:   seed,
		Ops:    ops,
		Window: window,
		From:   from,
		To:     to,
		Stride: stride,
		Shards: shards,
		Crash:  crash,
		Nodes:  nodes,
		Quorum: quorum,
		Profile: netsim.Profile{
			DropProb:     drop,
			DelayProb:    0.2,
			MaxDelay:     jitter,
			DialFailProb: drop,
		},
	}
	if verbose {
		cfg.Logf = log.Printf
	}
	res, err := crashtest.RunNet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		return 2
	}
	if nodes < 2 {
		nodes = 2
	}
	fmt.Printf("mode=net     seed=%d ops=%d window=%d nodes=%d crash=%v partition-points=%d violations=%d\n",
		res.Seed, res.Ops, res.Window, nodes, crash, res.Points, len(res.Violations))
	extra := ""
	if crash {
		extra = " -net-crash"
	}
	if nodes > 2 {
		extra += fmt.Sprintf(" -nodes %d", nodes)
		if quorum > 0 {
			extra += fmt.Sprintf(" -quorum %d", quorum)
		}
	}
	for _, v := range res.Violations {
		fmt.Printf("VIOLATION %s\n", v)
		fmt.Printf("  replay: go run ./cmd/crashtest -net -seed %d -ops %d -window %d -from %d -to %d%s\n",
			res.Seed, res.Ops, res.Window, v.Point, v.Point, extra)
	}
	if len(res.Violations) > 0 {
		return 1
	}
	return 0
}
